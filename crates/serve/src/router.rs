//! The cluster router: one `annd` process that speaks the client
//! protocol downstream and fans out to unmodified `annd` shard
//! processes upstream.
//!
//! The design lifts the live index's segment merge one level up: every
//! row lives on exactly one shard (`id % n_shards`, the modulus frozen
//! per index at BUILD time in a [`crate::placement`] catalog file), so
//! per-shard top-k lists are disjoint candidate sets and merging them by
//! `(distance, id)` — the same total order
//! [`dataset::exact::Neighbor`]'s `Ord` defines for segments — yields a
//! result byte-identical to a single-node index built over the union of
//! rows. The router over-fetches `min(k, shard_rows)` from each shard,
//! concatenates, sorts, truncates to `k`; the e2e suite pins the
//! byte-identity (ids and raw `f64` distance bits) including filtered
//! and range requests and after INSERT/DELETE/FLUSH through the router.
//!
//! Request handling:
//!
//! * **BUILD** (live only): the router reads the dataset, slices row
//!   `i` to shard `i % m`, spools each slice as a shard-local `.fvecs`,
//!   and issues per-shard BUILDs with the strided id layout
//!   `(id_base = s, id_step = m)` so shard-local ids are the global
//!   ids. Writes fail closed: any shard failure is an error.
//! * **INSERT/DELETE** group rows by `id % m` and apply per shard in
//!   parallel; auto-assigned ids come from the persisted `next_id`
//!   high-water mark so a restarted router never re-issues an id.
//! * **SEARCH/QUERY/BATCH** scatter-gather through
//!   [`ann::executor::par_map_scratch`] over a per-shard connection
//!   pool, round-robining read traffic across a shard's primary and
//!   its read-only replicas, with failover to the next endpoint.
//! * **LIST/STATS** aggregate across shards; STATS keeps per-shard
//!   breakdowns (`name@shard<i>` entries) next to the cluster-wide
//!   aggregate, latency histograms summed element-wise.
//!
//! Partial failure: a shard that refuses connections or times out gets
//! one retry with backoff (on a different endpoint when replicas
//! exist); if it still fails, reads degrade to a typed
//! [`Response::Partial`] naming the missing shards — or, under
//! `--require-all`, a typed error with the stable `unavailable:`
//! prefix. Writes always fail closed. The failure matrix lives in
//! `docs/cluster.md`.

use crate::client::{Client, ClientError};
use crate::placement::{Placement, PlacementTable};
use crate::protocol::{
    read_frame, write_frame, IndexInfo, Request, Response, StatsEntry, MAX_FRAME, MAX_NAME,
};
use crate::stats::{hist_quantile, IndexStats};
use ann::{SearchRequest, SearchStats};
use dataset::exact::Neighbor;
use dataset::Dataset;
use obs::TraceContext;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Hygiene timeout on downstream-client reads (same rationale as the
/// single-node server's).
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Accept-loop poll interval (mirrors the single-node server).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Backoff between the two attempts at an unresponsive shard.
const RETRY_BACKOFF: Duration = Duration::from_millis(50);

/// Cap on pooled idle connections per endpoint.
const POOL_CAP: usize = 8;

/// One shard's addresses: a read-write primary plus read-only replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// The primary's `host:port` — all writes, and its turn of reads.
    pub primary: String,
    /// Read-only replicas the router round-robins SEARCH/QUERY to.
    pub replicas: Vec<String>,
}

/// Parses the `--router` topology string: comma-separated elements,
/// each either a shard primary `host:port` (shard index = position) or
/// a replica `r<N>@host:port` / `replica<N>@host:port` attached to
/// shard `N` (`r@host:port` attaches to the most recent shard).
///
/// ```
/// let shards = serve::router::parse_topology(
///     "127.0.0.1:7701,127.0.0.1:7702,r0@127.0.0.1:7711",
/// ).unwrap();
/// assert_eq!(shards.len(), 2);
/// assert_eq!(shards[0].replicas, vec!["127.0.0.1:7711".to_string()]);
/// ```
pub fn parse_topology(spec: &str) -> Result<Vec<ShardSpec>, String> {
    let mut shards: Vec<ShardSpec> = Vec::new();
    for raw in spec.split(',') {
        let element = raw.trim();
        if element.is_empty() {
            return Err("empty element in the shard list".into());
        }
        let replica_of = element
            .split_once('@')
            .and_then(|(tag, _)| tag.strip_prefix("replica").or_else(|| tag.strip_prefix('r')));
        match replica_of {
            Some(n_text) => {
                let addr = element.split_once('@').expect("checked above").1;
                check_addr(addr)?;
                let target = if n_text.is_empty() {
                    shards.len().checked_sub(1).ok_or("replica listed before any shard")?
                } else {
                    let n: usize =
                        n_text.parse().map_err(|_| format!("bad replica tag in {element:?}"))?;
                    if n >= shards.len() {
                        return Err(format!(
                            "replica {element:?} references shard {n}, but only {} shards are \
                             listed before it",
                            shards.len()
                        ));
                    }
                    n
                };
                shards[target].replicas.push(addr.to_string());
            }
            None => {
                check_addr(element)?;
                shards.push(ShardSpec { primary: element.to_string(), replicas: Vec::new() });
            }
        }
    }
    if shards.is_empty() {
        return Err("no shards in the topology".into());
    }
    Ok(shards)
}

fn check_addr(addr: &str) -> Result<(), String> {
    if addr.contains(':') && !addr.ends_with(':') {
        Ok(())
    } else {
        Err(format!("{addr:?} is not a host:port address"))
    }
}

/// Router configuration (the `--router*` flags).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The shard topology (see [`parse_topology`]).
    pub shards: Vec<ShardSpec>,
    /// Fail closed: turn degraded reads into typed errors instead of
    /// [`Response::Partial`].
    pub require_all: bool,
    /// Directory for the routed-catalog file and BUILD spool slices;
    /// `None` keeps placement in memory only (restart re-learns it from
    /// shard LISTs, and auto-id INSERT is then refused for safety).
    pub dir: Option<PathBuf>,
    /// Connect + read deadline on every shard call.
    pub shard_timeout: Duration,
    /// The `--recall-floor` dial: lowest effective `target_recall` the
    /// router degrades planned requests to under overload (`0.0` off).
    pub recall_floor: f64,
    /// The `--p99-bound-us` overload signal for the dial (`0` off).
    pub p99_bound_micros: u64,
}

impl RouterConfig {
    /// A config with the default timeout and no persistence.
    pub fn new(shards: Vec<ShardSpec>) -> RouterConfig {
        RouterConfig {
            shards,
            require_all: false,
            dir: None,
            shard_timeout: Duration::from_secs(5),
            recall_floor: 0.0,
            p99_bound_micros: 0,
        }
    }
}

/// A bound, not-yet-running router (the cluster-facing counterpart of
/// [`crate::server::Server`]).
pub struct Router {
    listener: TcpListener,
    workers: usize,
    shutdown: Arc<AtomicBool>,
    state: RouterState,
}

/// One upstream endpoint (a primary or a replica) with its idle pool.
struct Endpoint {
    addr: String,
    idle: Mutex<Vec<Client>>,
}

impl Endpoint {
    fn new(addr: String) -> Endpoint {
        Endpoint { addr, idle: Mutex::new(Vec::new()) }
    }
}

/// One shard's endpoints plus the read round-robin cursor.
struct ShardPool {
    label: String,
    primary: Endpoint,
    replicas: Vec<Endpoint>,
    rr: AtomicUsize,
}

impl ShardPool {
    fn endpoint(&self, i: usize) -> &Endpoint {
        if i == 0 {
            &self.primary
        } else {
            &self.replicas[i - 1]
        }
    }

    fn endpoints(&self) -> usize {
        1 + self.replicas.len()
    }

    /// The label a missing shard is reported under.
    fn down_label(&self) -> String {
        format!("{}@{}", self.label, self.primary.addr)
    }
}

/// Why one shard call failed.
enum ShardError {
    /// The shard (every endpoint tried) is unreachable or timed out.
    Down(String),
    /// The shard answered with a server-side error — the request's
    /// problem, not the shard's availability.
    Remote(String),
}

/// What `try_endpoint` distinguishes for the retry loop.
enum EndpointError {
    /// Connect/read failure; `timed_out` splits deadline expiry from
    /// refused/reset connections for the health counters.
    Transport { timed_out: bool },
    Remote(String),
}

/// Wall-clock breakdown of one shard call, filled in as the call moves
/// through queue → dial → wire; these become the fields on the
/// per-shard child span of a routed SEARCH.
#[derive(Default, Clone, Copy)]
struct CallTiming {
    /// Time the call sat waiting for an executor slot.
    queue_micros: u64,
    /// Time dialing fresh connections (0 when a pooled one was reused).
    connect_micros: u64,
    /// Time on the wire: request write through response read, summed
    /// over attempts.
    rtt_micros: u64,
    /// Endpoint tries made (1 normally, 2 after a failover/retry).
    attempts: u32,
}

/// Pre-registered per-shard health counters (registry lookups are
/// hash-map hits; the hot path should bump atomics instead).
struct ShardObs {
    attempts: obs::Counter,
    failures: obs::Counter,
    timeouts: obs::Counter,
}

impl ShardObs {
    fn new(label: &str) -> ShardObs {
        let reg = obs::global();
        let labels = &[("shard", label)];
        ShardObs {
            attempts: reg.counter(
                "ann_router_shard_attempts_total",
                labels,
                "Endpoint tries per shard, including retries and failovers",
            ),
            failures: reg.counter(
                "ann_router_shard_failures_total",
                labels,
                "Endpoint tries that failed at the transport layer",
            ),
            timeouts: reg.counter(
                "ann_router_shard_timeouts_total",
                labels,
                "Transport failures that were deadline expiries",
            ),
        }
    }
}

/// Whether a client error is a deadline expiry (read timeout or
/// connect timeout) rather than a refused/reset connection.
fn is_timeout(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Io(io)
            if matches!(io.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)
    )
}

struct RouterState {
    pools: Vec<ShardPool>,
    require_all: bool,
    timeout: Duration,
    placement: Mutex<PlacementTable>,
    /// Per-index, per-shard live row counts, used to clamp the
    /// over-fetch `k` per shard (`SearchRequest::validate` rejects
    /// `k > rows`). Write-through from routed BUILD/INSERT/DELETE,
    /// refreshed from shard LISTs, invalidated when a shard rejects a
    /// clamped request (drift from writes that bypassed the router).
    lens: RwLock<HashMap<String, Vec<Option<u64>>>>,
    spool: PathBuf,
    /// The router's own hop stats — what the shards cannot see: queue
    /// wait, scatter, merge. Reported as the `router` row in STATS and
    /// as this process's `ann_*` series in METRICS.
    stats: IndexStats,
    /// Health counters parallel to `pools`.
    shard_obs: Vec<ShardObs>,
    degraded_reads: obs::Counter,
    /// The router-edge overload dial: steps `target_recall` down toward
    /// the floor *before* the target fans out, reading this process's
    /// own end-to-end p99 (which sees scatter + merge cost the shards
    /// cannot). Shards may degrade again against their own signals.
    degrader: plan::Degrader,
}

impl Router {
    /// Binds `addr` and prepares the shard pools. Fails if a persisted
    /// routed catalog names more shards than `config` provides — a
    /// shrunk cluster cannot route identically, and silently re-hashing
    /// would scatter every index.
    pub fn bind(config: RouterConfig, addr: impl ToSocketAddrs, workers: usize) -> io::Result<Router> {
        let placement = match &config.dir {
            Some(dir) => PlacementTable::open(dir)?,
            None => PlacementTable::in_memory(),
        };
        let n = config.shards.len() as u32;
        if placement.max_mod() > n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "routed catalog was written for {} shards but the topology lists {n}; \
                     restore the missing shards (placement is frozen per index)",
                    placement.max_mod()
                ),
            ));
        }
        let spool = match &config.dir {
            Some(dir) => dir.join("spool"),
            None => std::env::temp_dir().join(format!("annd-router-spool-{}", std::process::id())),
        };
        let pools: Vec<ShardPool> = config
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardPool {
                label: format!("shard{i}"),
                primary: Endpoint::new(s.primary.clone()),
                replicas: s.replicas.iter().cloned().map(Endpoint::new).collect(),
                rr: AtomicUsize::new(i), // stagger the starting endpoint
            })
            .collect();
        let shard_obs = pools.iter().map(|p| ShardObs::new(&p.label)).collect();
        Ok(Router {
            listener: TcpListener::bind(addr)?,
            workers: workers.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
            state: RouterState {
                pools,
                require_all: config.require_all,
                timeout: config.shard_timeout,
                placement: Mutex::new(placement),
                lens: RwLock::new(HashMap::new()),
                spool,
                stats: IndexStats::default(),
                shard_obs,
                degraded_reads: obs::global().counter(
                    "ann_router_degraded_reads_total",
                    &[],
                    "Reads that lost at least one shard (Partial or unavailable error)",
                ),
                degrader: plan::Degrader {
                    floor: config.recall_floor,
                    p99_bound_micros: config.p99_bound_micros,
                },
            },
        })
    }

    /// The bound address (the real port when bound with port `0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a SHUTDOWN request arrives, then drains and returns.
    /// Shards are *not* shut down — they are independent processes; stop
    /// them individually.
    pub fn run(self) -> io::Result<()> {
        let local = self.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));
        let state = &self.state;
        let shutdown = &self.shutdown;
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = rx.clone();
                scope.spawn(move || {
                    loop {
                        let stream = {
                            let guard = rx.lock().expect("receiver poisoned");
                            guard.recv()
                        };
                        match stream {
                            Ok(s) => handle_connection(s, state, shutdown, local),
                            Err(_) => break,
                        }
                    }
                });
            }
            loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        obs::warn!("accept failed, retrying", error = e);
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
            drop(tx);
        });
        Ok(())
    }
}

/// Connection ids for log correlation (shared with nothing — the
/// router is its own process, so its sequence restarts at 1).
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

fn handle_connection(
    mut stream: TcpStream,
    state: &RouterState,
    shutdown: &AtomicBool,
    local: SocketAddr,
) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    let conn = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed);
    let peer = stream.peer_addr().map_or_else(|_| "?".to_string(), |a| a.to_string());
    obs::debug!("connection open", conn = conn, peer = peer);
    loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) => {
                obs::debug!("connection closed", conn = conn);
                return;
            }
            Err(e) => {
                obs::debug!("connection dropped", conn = conn, error = e);
                return;
            }
        };
        let (resp, stop) = match Request::decode_traced(&body) {
            Ok((req, trace)) => {
                let ctx = trace.unwrap_or_else(TraceContext::mint);
                let op = req.op_name();
                let t0 = Instant::now();
                let out = dispatch(req, ctx, state, shutdown, local);
                obs::debug!(
                    "request",
                    conn = conn,
                    trace = ctx,
                    op = op,
                    us = t0.elapsed().as_micros()
                );
                out
            }
            Err(e) => {
                obs::warn!("bad request", conn = conn, peer = peer, error = e);
                (Response::Error(format!("bad request: {e}")), true)
            }
        };
        if write_frame(&mut stream, &resp.encode()).is_err() {
            return;
        }
        if stop {
            return;
        }
    }
}

fn dispatch(
    req: Request,
    ctx: TraceContext,
    state: &RouterState,
    shutdown: &AtomicBool,
    local: SocketAddr,
) -> (Response, bool) {
    match req {
        Request::Ping => (Response::Pong, false),
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            let target: SocketAddr = if local.ip().is_unspecified() {
                (std::net::Ipv4Addr::LOCALHOST, local.port()).into()
            } else {
                local
            };
            TcpStream::connect_timeout(&target, Duration::from_millis(100)).ok();
            (Response::ShuttingDown, true)
        }
        Request::List => (state.route_list(), false),
        Request::Stats => (state.route_stats(), false),
        Request::Metrics => (state.route_metrics(), false),
        Request::Query { index, k, budget, probes, vector } => (
            state.route_search(
                ctx, &index, k, budget, probes, None, None, false, None, &vector, false,
            ),
            false,
        ),
        Request::Search {
            index,
            k,
            budget,
            probes,
            filter,
            max_dist,
            want_stats,
            target_recall,
            vector,
        } => (
            state.route_search(
                ctx,
                &index,
                k,
                budget,
                probes,
                filter,
                max_dist,
                want_stats,
                target_recall,
                &vector,
                true,
            ),
            false,
        ),
        Request::Batch { index, k, budget, probes, dim, vectors } => {
            (state.route_batch(ctx, &index, k, budget, probes, dim, vectors), false)
        }
        Request::Build {
            name,
            spec,
            metric,
            data_path,
            limit,
            live,
            seal_threshold,
            max_segments,
            id_base,
            id_step,
        } => {
            if (id_base, id_step) != (0, 1) {
                return (
                    Response::Error(
                        "the router owns the cluster id layout; BUILD without id_base/id_step"
                            .into(),
                    ),
                    false,
                );
            }
            (
                state.route_build(&name, &spec, &metric, &data_path, limit, live, seal_threshold, max_segments),
                false,
            )
        }
        Request::Insert { index, dim, vectors, ids } => {
            (state.route_insert(&index, dim, vectors, ids), false)
        }
        Request::Delete { index, ids } => (state.route_delete(&index, &ids), false),
        Request::Flush { index } => (state.route_flush(&index), false),
        Request::Calibrate { index, sample, k } => {
            (state.route_calibrate(&index, sample, k), false)
        }
    }
}

impl RouterState {
    fn n_shards(&self) -> u32 {
        self.pools.len() as u32
    }

    // ------------------------------------------------------ shard calls

    /// One call against one endpoint: check a pooled connection out (or
    /// dial), run `f`, check it back in on success. A server-side error
    /// keeps the connection (it is healthy); transport errors drop it.
    fn try_endpoint<T>(
        &self,
        ep: &Endpoint,
        f: &(impl Fn(&mut Client) -> Result<T, ClientError> + Sync),
        timing: &mut CallTiming,
    ) -> Result<T, EndpointError> {
        let pooled = ep.idle.lock().expect("pool poisoned").pop();
        let mut client = match pooled {
            Some(c) => c,
            None => {
                let dial = Instant::now();
                let out = Client::connect_timeout(&ep.addr, self.timeout);
                timing.connect_micros += dial.elapsed().as_micros() as u64;
                out.map_err(|e| EndpointError::Transport {
                    timed_out: matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ),
                })?
            }
        };
        let wire = Instant::now();
        let result = f(&mut client);
        timing.rtt_micros += wire.elapsed().as_micros() as u64;
        match result {
            Ok(v) => {
                let mut idle = ep.idle.lock().expect("pool poisoned");
                if idle.len() < POOL_CAP {
                    idle.push(client);
                }
                Ok(v)
            }
            Err(ClientError::Server(msg)) => {
                let mut idle = ep.idle.lock().expect("pool poisoned");
                if idle.len() < POOL_CAP {
                    idle.push(client);
                }
                Err(EndpointError::Remote(msg))
            }
            Err(e) => Err(EndpointError::Transport { timed_out: is_timeout(&e) }),
        }
    }

    /// One call against shard `s` with the cluster's availability
    /// policy: reads round-robin across primary + replicas and fail
    /// over to the next endpoint; writes always hit the primary. An
    /// unresponsive endpoint gets exactly one retry after
    /// [`RETRY_BACKOFF`] before the shard is declared down. Fills
    /// `timing` and bumps the shard's health counters as it goes.
    fn call_shard_timed<T>(
        &self,
        s: usize,
        write: bool,
        f: &(impl Fn(&mut Client) -> Result<T, ClientError> + Sync),
        timing: &mut CallTiming,
    ) -> Result<T, ShardError> {
        let pool = &self.pools[s];
        let watch = &self.shard_obs[s];
        let eps = pool.endpoints();
        let start = if write || eps == 1 {
            0
        } else {
            pool.rr.fetch_add(1, Ordering::Relaxed) % eps
        };
        for attempt in 0..2 {
            let ep = pool.endpoint(if write { 0 } else { (start + attempt) % eps });
            timing.attempts += 1;
            watch.attempts.inc();
            match self.try_endpoint(ep, f, timing) {
                Ok(v) => return Ok(v),
                Err(EndpointError::Remote(msg)) => return Err(ShardError::Remote(msg)),
                Err(EndpointError::Transport { timed_out }) => {
                    watch.failures.inc();
                    if timed_out {
                        watch.timeouts.inc();
                    }
                    if attempt == 0 {
                        std::thread::sleep(RETRY_BACKOFF);
                    }
                }
            }
        }
        Err(ShardError::Down(pool.down_label()))
    }

    fn call_shard<T>(
        &self,
        s: usize,
        write: bool,
        f: &(impl Fn(&mut Client) -> Result<T, ClientError> + Sync),
    ) -> Result<T, ShardError> {
        self.call_shard_timed(s, write, f, &mut CallTiming::default())
    }

    /// Scatter one call over `shards` through the workspace executor
    /// (the same chunked scheduler batches run on), gathering one
    /// result per shard in order.
    fn fan_out<T, F>(&self, shards: &[usize], write: bool, f: F) -> Vec<Result<T, ShardError>>
    where
        T: Send + Sync,
        F: Fn(usize, &mut Client) -> Result<T, ClientError> + Sync,
    {
        ann::executor::par_map_scratch(shards.len(), || (), |i, (): &mut ()| {
            let s = shards[i];
            self.call_shard(s, write, &|c: &mut Client| f(s, c))
        })
    }

    /// [`fan_out`](RouterState::fan_out) plus the per-call
    /// [`CallTiming`] — the variant routed SEARCH uses to build its
    /// span tree. Queue wait is measured from this call's entry to the
    /// moment the executor actually starts the shard call.
    fn fan_out_timed<T, F>(
        &self,
        shards: &[usize],
        write: bool,
        f: F,
    ) -> Vec<(Result<T, ShardError>, CallTiming)>
    where
        T: Send + Sync,
        F: Fn(usize, &mut Client) -> Result<T, ClientError> + Sync,
    {
        let submitted = Instant::now();
        ann::executor::par_map_scratch(shards.len(), || (), |i, (): &mut ()| {
            let mut timing = CallTiming {
                queue_micros: submitted.elapsed().as_micros() as u64,
                ..CallTiming::default()
            };
            let s = shards[i];
            let result =
                self.call_shard_timed(s, write, &|c: &mut Client| f(s, c), &mut timing);
            (result, timing)
        })
    }

    // ------------------------------------------------- placement + lens

    /// The placement for `index`, adopting `mod = n_shards` (with an
    /// unknown id high-water mark) when the index exists on the shards
    /// but the router has no record — the restart-without-`--router-dir`
    /// path. Returns `None` when no shard serves the index.
    fn placement_of(&self, index: &str) -> Option<Placement> {
        if let Some(p) = self.placement.lock().expect("placement poisoned").get(index) {
            return Some(p);
        }
        // Learn from the shards: any shard listing the index means it
        // is servable; adopt the full-cluster modulus.
        let lens = self.refresh_lens(index);
        if lens.iter().any(|l| matches!(l, Some(n) if *n > 0)) {
            let adopted = Placement { mod_shards: self.n_shards(), next_id: 0 };
            let mut table = self.placement.lock().expect("placement poisoned");
            if table.get(index).is_none() {
                if let Err(e) = table.set(index, adopted) {
                    obs::error!("persisting adopted placement failed", index = index, error = e);
                }
            }
            Some(adopted)
        } else {
            None
        }
    }

    /// Per-shard row counts for `index` (cache, then shard LISTs).
    fn lens_of(&self, index: &str, m: u32) -> Vec<Option<u64>> {
        if let Some(lens) = self.lens.read().expect("lens poisoned").get(index) {
            return lens[..m as usize].to_vec();
        }
        self.refresh_lens(index)[..m as usize].to_vec()
    }

    /// Fans LIST to every shard and rebuilds the length cache for all
    /// indexes it sees; returns `index`'s per-shard lengths (a down
    /// shard's slot stays `None`).
    fn refresh_lens(&self, index: &str) -> Vec<Option<u64>> {
        let all: Vec<usize> = (0..self.pools.len()).collect();
        let results = self.fan_out(&all, false, |_, c| c.list());
        let mut fresh: HashMap<String, Vec<Option<u64>>> = HashMap::new();
        for (s, result) in results.iter().enumerate() {
            if let Ok(infos) = result {
                for info in infos {
                    fresh
                        .entry(info.name.clone())
                        .or_insert_with(|| vec![None; self.pools.len()])[s] = Some(info.len);
                }
            }
        }
        let out =
            fresh.get(index).cloned().unwrap_or_else(|| vec![None; self.pools.len()]);
        *self.lens.write().expect("lens poisoned") = fresh;
        out
    }

    /// Write-through after a routed write: apply `delta` to the cached
    /// length of `index` on shard `s`.
    fn adjust_len(&self, index: &str, s: usize, delta: i64) {
        if let Some(lens) = self.lens.write().expect("lens poisoned").get_mut(index) {
            if let Some(Some(len)) = lens.get_mut(s) {
                *len = len.saturating_add_signed(delta);
            }
        }
    }

    fn set_lens(&self, index: &str, per_shard: Vec<Option<u64>>) {
        self.lens.write().expect("lens poisoned").insert(index.to_string(), per_shard);
    }

    fn drop_lens(&self, index: &str) {
        self.lens.write().expect("lens poisoned").remove(index);
    }

    /// The degraded-read policy in one place: `missing` non-empty turns
    /// into either the typed `unavailable:` error (`--require-all`) or
    /// a [`Response::Partial`] carrying `lists`.
    fn degraded(&self, lists: Vec<Vec<Neighbor>>, missing: Vec<String>) -> Response {
        self.degraded_reads.inc();
        obs::warn!("degraded read", missing = missing.join(", "));
        if self.require_all {
            Response::Error(format!(
                "unavailable: shards [{}] did not answer and --require-all is set",
                missing.join(", ")
            ))
        } else {
            Response::Partial { lists, missing_shards: missing }
        }
    }

    // ------------------------------------------------------------ reads

    /// The scatter-gather core behind QUERY and SEARCH (`wire_search`
    /// picks the complete-answer response variant). Each shard call
    /// carries a child of `ctx` on the wire and comes back with its
    /// [`CallTiming`]; the whole scatter-gather is assembled into a
    /// span tree that the slow-query log prints when the request runs
    /// past `--slow-query-ms`.
    #[allow(clippy::too_many_arguments)]
    fn route_search(
        &self,
        ctx: TraceContext,
        index: &str,
        k: u32,
        budget: u32,
        probes: u32,
        filter: Option<ann::IdFilter>,
        max_dist: Option<f64>,
        want_stats: bool,
        target_recall: Option<f64>,
        vector: &[f32],
        wire_search: bool,
    ) -> Response {
        let Some(p) = self.placement_of(index) else {
            return Response::Error(format!("no such index {index:?}"));
        };
        // Target validation mirrors the single-node server (where the
        // plan resolves before the substituted request is checked), so
        // the router answers bad targets with byte-identical text. The
        // wire's 0-sentinel convention makes `budget|probes != 0` the
        // explicit-knobs signal.
        if let Some(t) = target_recall {
            if !t.is_finite() || t <= 0.0 || t > 1.0 {
                let e = ann::RequestError::BadTargetRecall(t);
                return Response::Error(format!("index {index:?}: {e}"));
            }
            if budget != 0 || probes != 0 {
                let e = ann::RequestError::TargetRecallWithKnobs;
                return Response::Error(format!("index {index:?}: {e}"));
            }
        }
        let lens = self.lens_of(index, p.mod_shards);
        // Mirror single-node request legality over the union row count,
        // so a router in front of the same rows answers bad requests
        // with the same message. Unknown lengths (a shard was down
        // during refresh) skip the rows check — the shard's own
        // validation still applies.
        let mut check = SearchRequest::top_k(k as usize);
        check.max_dist = max_dist;
        let total: u64 = lens.iter().map(|l| l.unwrap_or(0)).sum();
        let rows =
            if lens.iter().all(Option::is_some) { total as usize } else { usize::MAX };
        if let Err(e) = check.validate(rows) {
            return Response::Error(format!("index {index:?}: {e}"));
        }
        // The router-edge overload dial: step the target down toward
        // the floor against this process's end-to-end p99, then fan the
        // *effective* target out. Each shard plans against its own
        // calibration table (candidate sets are disjoint, so per-shard
        // recall composes into cluster recall), and may step down again
        // against its own signals.
        let effective = target_recall.map(|t| self.degrader.effective(t, self.stats.p99_micros()));
        let edge_degraded = matches!((target_recall, effective), (Some(r), Some(e)) if e < r);
        let t0 = Instant::now();
        let targets: Vec<usize> = (0..p.mod_shards as usize)
            .filter(|&s| lens[s].is_none_or(|n| n > 0))
            .collect();
        let results = self.fan_out_timed(&targets, false, |s, c| {
            let k_s = lens[s].map_or(k as u64, |n| n.min(k as u64)) as usize;
            let mut req = match effective {
                // Planned mode: sentinel knobs ride the wire (the
                // client encodes 0/0 when a target is set and no knobs
                // are), so the shard plans locally.
                Some(t) => SearchRequest::top_k(k_s).target_recall(t),
                None => SearchRequest::top_k(k_s).budget(budget as usize).probes(probes as usize),
            };
            req.filter = filter.clone();
            req.max_dist = max_dist;
            req.fields.stats = want_stats;
            c.trace = Some(ctx.child());
            let out = c.search(index, vector, &req);
            c.trace = None;
            out
        });
        let scatter_micros = t0.elapsed().as_micros() as u64;
        let merge_start = Instant::now();
        let mut hits: Vec<Neighbor> = Vec::new();
        let mut stats = SearchStats::default();
        let mut missing = Vec::new();
        let mut shard_spans: Vec<obs::SpanRecord> = Vec::new();
        for (i, (result, timing)) in results.into_iter().enumerate() {
            let mut span = obs::SpanRecord::new(
                self.pools[targets[i]].label.clone(),
                timing.queue_micros,
                timing.connect_micros + timing.rtt_micros,
            )
            .field("queue_us", timing.queue_micros)
            .field("connect_us", timing.connect_micros)
            .field("rtt_us", timing.rtt_micros)
            .field("attempts", timing.attempts);
            match result {
                Ok((shard_hits, shard_stats)) => {
                    hits.extend(shard_hits);
                    if let Some(s) = shard_stats {
                        stats.candidates_scanned += s.candidates_scanned;
                        stats.heap_pushes += s.heap_pushes;
                        // Cluster plan summary: worst-case knobs, most
                        // pessimistic prediction — the binding shard.
                        if let Some(sp) = s.plan {
                            let agg = stats.plan.get_or_insert(sp);
                            agg.budget = agg.budget.max(sp.budget);
                            agg.probes = agg.probes.max(sp.probes);
                            agg.predicted_recall = agg.predicted_recall.min(sp.predicted_recall);
                            agg.effective_target = agg.effective_target.min(sp.effective_target);
                        }
                    }
                }
                Err(ShardError::Remote(msg)) => {
                    // Likely length drift (a write bypassed the router
                    // and our clamp overshot): refetch next time.
                    self.drop_lens(index);
                    return Response::Error(msg);
                }
                Err(ShardError::Down(label)) => {
                    span = span.field("down", &label);
                    missing.push(label);
                }
            }
            shard_spans.push(span);
        }
        hits.sort_unstable();
        hits.truncate(k as usize);
        let wall = t0.elapsed().as_micros() as u64;
        self.stats.record_query(wall);
        self.stats.record_scanned(stats.candidates_scanned);
        self.stats.record_funnel(stats.heap_pushes, 0);
        if target_recall.is_some() {
            self.stats.record_planned(edge_degraded);
        }
        if obs::is_slow(wall) {
            let op = if wire_search { "SEARCH" } else { "QUERY" };
            let mut root = obs::SpanRecord::new(op, 0, wall).field("index", index);
            for span in shard_spans {
                root.push_child(span);
            }
            root.push_child(
                obs::SpanRecord::new(
                    "merge",
                    scatter_micros,
                    merge_start.elapsed().as_micros() as u64,
                )
                .field("hits", hits.len()),
            );
            obs::warn!("slow request", trace = ctx, us = wall, span = root.render());
        }
        if !missing.is_empty() {
            return self.degraded(vec![hits], missing);
        }
        if wire_search {
            stats.wall_micros = wall;
            Response::Search { hits, stats: want_stats.then_some(stats) }
        } else {
            Response::Neighbors(hits)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn route_batch(
        &self,
        ctx: TraceContext,
        index: &str,
        k: u32,
        budget: u32,
        probes: u32,
        dim: u32,
        vectors: Vec<f32>,
    ) -> Response {
        let Some(p) = self.placement_of(index) else {
            return Response::Error(format!("no such index {index:?}"));
        };
        let lens = self.lens_of(index, p.mod_shards);
        let total: u64 = lens.iter().map(|l| l.unwrap_or(0)).sum();
        let rows =
            if lens.iter().all(Option::is_some) { total as usize } else { usize::MAX };
        if let Err(e) = SearchRequest::top_k(k as usize).validate(rows) {
            return Response::Error(format!("index {index:?}: {e}"));
        }
        let nq = vectors.len() / dim.max(1) as usize;
        let resp_bytes = 5 + nq as u64 * (4 + 12 * u64::from(k));
        if resp_bytes > MAX_FRAME as u64 {
            return Response::Error(format!(
                "batch of {nq} queries at k={k} would need a {resp_bytes}-byte response, over \
                 the {MAX_FRAME}-byte frame cap; split the batch"
            ));
        }
        let queries = Dataset::from_flat("batch", dim as usize, vectors);
        let t0 = Instant::now();
        let targets: Vec<usize> = (0..p.mod_shards as usize)
            .filter(|&s| lens[s].is_none_or(|n| n > 0))
            .collect();
        let results = self.fan_out(&targets, false, |s, c| {
            let k_s = lens[s].map_or(k as u64, |n| n.min(k as u64)) as usize;
            c.trace = Some(ctx.child());
            let out = c.query_batch(index, k_s, budget as usize, probes as usize, &queries);
            c.trace = None;
            out
        });
        let mut merged: Vec<Vec<Neighbor>> = vec![Vec::new(); nq];
        let mut missing = Vec::new();
        for result in results {
            match result {
                Ok(lists) => {
                    for (q, list) in lists.into_iter().enumerate() {
                        merged[q].extend(list);
                    }
                }
                Err(ShardError::Remote(msg)) => {
                    self.drop_lens(index);
                    return Response::Error(msg);
                }
                Err(ShardError::Down(label)) => missing.push(label),
            }
        }
        for list in &mut merged {
            list.sort_unstable();
            list.truncate(k as usize);
        }
        self.stats.record_batch(nq as u64, t0.elapsed().as_micros() as u64);
        if missing.is_empty() {
            Response::Batch(merged)
        } else {
            self.degraded(merged, missing)
        }
    }

    fn route_list(&self) -> Response {
        let all: Vec<usize> = (0..self.pools.len()).collect();
        let results = self.fan_out(&all, false, |_, c| c.list());
        let mut agg: BTreeMap<String, IndexInfo> = BTreeMap::new();
        let mut fresh: HashMap<String, Vec<Option<u64>>> = HashMap::new();
        let mut missing = Vec::new();
        for (s, result) in results.into_iter().enumerate() {
            match result {
                Ok(infos) => {
                    for info in infos {
                        fresh
                            .entry(info.name.clone())
                            .or_insert_with(|| vec![None; self.pools.len()])[s] =
                            Some(info.len);
                        match agg.get_mut(&info.name) {
                            Some(existing) => {
                                existing.len += info.len;
                                existing.index_bytes += info.index_bytes;
                                existing.sq8 &= info.sq8;
                            }
                            None => {
                                let mut first = info;
                                first.load_mode = "router".into();
                                agg.insert(first.name.clone(), first);
                            }
                        }
                    }
                }
                Err(ShardError::Remote(msg)) => {
                    return Response::Error(format!(
                        "{}: {msg}",
                        self.pools[s].down_label()
                    ))
                }
                Err(ShardError::Down(label)) => missing.push(label),
            }
        }
        *self.lens.write().expect("lens poisoned") = fresh;
        if !missing.is_empty() && self.require_all {
            return Response::Error(format!(
                "unavailable: shards [{}] did not answer and --require-all is set",
                missing.join(", ")
            ));
        }
        // LIST has no partial variant: serve the surviving aggregate
        // (row counts are lower bounds while shards are down).
        Response::List(agg.into_values().collect())
    }

    fn route_stats(&self) -> Response {
        let all: Vec<usize> = (0..self.pools.len()).collect();
        let results = self.fan_out(&all, false, |_, c| c.stats());
        let mut aggregates: BTreeMap<String, StatsEntry> = BTreeMap::new();
        let mut breakdowns: Vec<StatsEntry> = Vec::new();
        let mut missing = Vec::new();
        for (s, result) in results.into_iter().enumerate() {
            match result {
                Ok(entries) => {
                    for entry in entries {
                        match aggregates.get_mut(&entry.name) {
                            Some(agg) => merge_stats(agg, &entry),
                            None => {
                                let mut first = entry.clone();
                                first.load_mode = "router".into();
                                aggregates.insert(first.name.clone(), first);
                            }
                        }
                        breakdowns.push(shard_entry(entry, &self.pools[s].label));
                    }
                }
                Err(ShardError::Remote(msg)) => {
                    return Response::Error(format!(
                        "{}: {msg}",
                        self.pools[s].down_label()
                    ))
                }
                Err(ShardError::Down(label)) => missing.push(label),
            }
        }
        if !missing.is_empty() && self.require_all {
            return Response::Error(format!(
                "unavailable: shards [{}] did not answer and --require-all is set",
                missing.join(", ")
            ));
        }
        let mut out: Vec<StatsEntry> = aggregates.into_values().collect();
        for agg in &mut out {
            agg.p50_micros = hist_quantile(&agg.latency_hist, 0.50);
            agg.p99_micros = hist_quantile(&agg.latency_hist, 0.99);
        }
        // The router's own hop: end-to-end latencies as clients see
        // them, next to (not folded into) the shard-side numbers, so
        // `router p99 - shard p99` reads off the scatter/merge cost.
        out.push(self.router_entry());
        out.extend(breakdowns);
        Response::Stats(out)
    }

    /// The `router` pseudo-index: this process's own request counters.
    fn router_entry(&self) -> StatsEntry {
        self.stats.snapshot("router", "", "router", false)
    }

    /// METRICS answers with the *router process's* series — the
    /// health counters and the hop histogram. Shard internals are
    /// scraped from the shards themselves, which keeps every exporter
    /// owning exactly its own process.
    fn route_metrics(&self) -> Response {
        let mut out = obs::PromText::new();
        obs::global().render_into(&mut out);
        crate::stats::render_prom(&[self.router_entry()], &mut out);
        Response::Metrics(out.into_string())
    }

    // ----------------------------------------------------------- writes

    /// The error writes fail closed with: name the shards that did not
    /// apply, and say so — the cluster may be partially written.
    fn write_failure(&self, verb: &str, index: &str, failures: &[String]) -> Response {
        Response::Error(format!(
            "{verb} on {index:?} failed on [{}]; writes fail closed and other shards may \
             already have applied — retry once every shard is reachable",
            failures.join(", ")
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn route_build(
        &self,
        name: &str,
        spec: &str,
        metric: &str,
        data_path: &str,
        limit: u32,
        live: bool,
        seal_threshold: u32,
        max_segments: u32,
    ) -> Response {
        if !live {
            return Response::Error(
                "routed BUILDs are live-only: static indexes answer with positional ids, which \
                 cannot be made cluster-unique; pass --live true"
                    .into(),
            );
        }
        if !crate::server::valid_build_name(name) {
            return Response::Error(format!(
                "bad catalog name {name:?}: use letters, digits, '-', '_', '.' (not leading), \
                 at most {MAX_NAME} bytes"
            ));
        }
        match std::fs::metadata(data_path) {
            Ok(m) if m.len() > crate::server::MAX_BUILD_DATASET_BYTES => {
                return Response::Error(format!(
                    "dataset {data_path:?} is {} bytes, over the {}-byte BUILD cap; pass \
                     --limit or pre-slice the file",
                    m.len(),
                    crate::server::MAX_BUILD_DATASET_BYTES
                ));
            }
            Ok(_) => {}
            Err(e) => return Response::Error(format!("loading dataset {data_path:?}: {e}")),
        }
        let limit = if limit == 0 { None } else { Some(limit as usize) };
        let data = match dataset::io::read_fvecs(data_path, limit) {
            Ok(d) => d,
            Err(e) => return Response::Error(format!("loading dataset {data_path:?}: {e}")),
        };
        let m = self.n_shards();
        if (data.len() as u64) < u64::from(m) {
            return Response::Error(format!(
                "dataset has {} rows but the cluster has {m} shards; every shard needs at \
                 least one row",
                data.len()
            ));
        }
        // Slice row i to shard i % m (row i's global id is i, so this IS
        // the placement rule) and spool each slice where its shard can
        // read it. Routed BUILD therefore requires shards to share a
        // filesystem with the router — the docs call this out.
        if let Err(e) = std::fs::create_dir_all(&self.spool) {
            return Response::Error(format!("creating spool dir: {e}"));
        }
        let mut slice_paths = Vec::with_capacity(m as usize);
        for s in 0..m {
            let rows: Vec<&[f32]> =
                (s as usize..data.len()).step_by(m as usize).map(|i| data.get(i)).collect();
            let flat: Vec<f32> = rows.concat();
            let slice = Dataset::from_flat("slice", data.dim(), flat);
            let path = self.spool.join(format!("{name}.shard{s}.fvecs"));
            if let Err(e) = dataset::io::write_fvecs(&path, &slice) {
                return Response::Error(format!("spooling shard {s} slice: {e}"));
            }
            slice_paths.push(path);
        }
        let targets: Vec<usize> = (0..m as usize).collect();
        let results = self.fan_out(&targets, true, |s, c| {
            c.build_live_ids(
                name,
                spec,
                metric,
                &slice_paths[s].display().to_string(),
                seal_threshold as usize,
                max_segments as usize,
                s as u32,
                m,
            )
        });
        for path in &slice_paths {
            std::fs::remove_file(path).ok();
        }
        let mut failures = Vec::new();
        let mut info_agg: Option<IndexInfo> = None;
        let mut build_micros = 0u64;
        let mut snapshot_paths = Vec::new();
        for (s, result) in results.into_iter().enumerate() {
            match result {
                Ok((info, micros, snap)) => {
                    build_micros = build_micros.max(micros);
                    if !snap.is_empty() {
                        snapshot_paths.push(snap);
                    }
                    match &mut info_agg {
                        Some(agg) => {
                            agg.len += info.len;
                            agg.index_bytes += info.index_bytes;
                            agg.sq8 &= info.sq8;
                        }
                        None => {
                            let mut first = info;
                            first.load_mode = "router".into();
                            info_agg = Some(first);
                        }
                    }
                }
                Err(ShardError::Remote(msg)) => {
                    failures.push(format!("{}: {msg}", self.pools[s].down_label()))
                }
                Err(ShardError::Down(label)) => failures.push(label),
            }
        }
        if !failures.is_empty() {
            return self.write_failure("BUILD", name, &failures);
        }
        let placement = Placement { mod_shards: m, next_id: data.len() as u32 };
        if let Err(e) = self.placement.lock().expect("placement poisoned").set(name, placement) {
            return Response::Error(format!("persisting routed catalog for {name:?}: {e}"));
        }
        let per_shard: Vec<Option<u64>> = (0..m as u64)
            .map(|s| Some((data.len() as u64 + (m as u64 - 1) - s) / m as u64))
            .collect();
        self.set_lens(name, per_shard);
        let info = info_agg.expect("at least one shard built");
        Response::Built { info, build_micros, snapshot_path: snapshot_paths.join("; ") }
    }

    fn route_insert(&self, index: &str, dim: u32, vectors: Vec<f32>, ids: Vec<u32>) -> Response {
        let Some(p) = self.placement_of(index) else {
            return Response::Error(format!("no such index {index:?}"));
        };
        let nq = vectors.len() / dim.max(1) as usize;
        if 5 + nq as u64 * 4 > MAX_FRAME as u64 {
            return Response::Error(format!(
                "insert of {nq} rows would overflow the response frame; split it"
            ));
        }
        let m = p.mod_shards;
        let assigned: Vec<u32> = if ids.is_empty() {
            // Auto-assign from the persisted high-water mark. An adopted
            // placement (next_id unknown, recorded as 0 over a non-empty
            // index) cannot do this safely.
            let lens = self.lens_of(index, m);
            let total: u64 = lens.iter().map(|l| l.unwrap_or(0)).sum();
            if p.next_id == 0 && total > 0 {
                return Response::Error(format!(
                    "cannot auto-assign ids for {index:?}: the routed catalog has no id \
                     high-water mark for it (adopted index); pass explicit ids or rebuild \
                     through the router"
                ));
            }
            if u64::from(p.next_id) + nq as u64 >= u64::from(u32::MAX) {
                return Response::Error("id space exhausted".into());
            }
            (p.next_id..p.next_id + nq as u32).collect()
        } else {
            ids
        };
        // Burn the ids *before* fanning out: if the insert half-fails,
        // a retry (or the next auto-assign) must not re-issue them.
        let high = assigned.iter().copied().max().unwrap_or(0);
        if let Err(e) = self
            .placement
            .lock()
            .expect("placement poisoned")
            .bump_next_id(index, high.saturating_add(1))
        {
            return Response::Error(format!("persisting routed catalog for {index:?}: {e}"));
        }
        // Group rows by their placement shard, preserving request order
        // within each group.
        let dim_usize = dim.max(1) as usize;
        let mut groups: HashMap<usize, (Vec<f32>, Vec<u32>)> = HashMap::new();
        for (j, &id) in assigned.iter().enumerate() {
            let (flat, gids) = groups.entry((id % m) as usize).or_default();
            flat.extend_from_slice(&vectors[j * dim_usize..(j + 1) * dim_usize]);
            gids.push(id);
        }
        let targets: Vec<usize> = {
            let mut t: Vec<usize> = groups.keys().copied().collect();
            t.sort_unstable();
            t
        };
        let results = self.fan_out(&targets, true, |s, c| {
            let (flat, gids) = &groups[&s];
            let rows = Dataset::from_flat("insert", dim_usize, flat.clone());
            c.insert(index, &rows, Some(gids))
        });
        let mut failures = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            let s = targets[i];
            match result {
                Ok(got) => {
                    self.adjust_len(index, s, got.len() as i64);
                }
                Err(ShardError::Remote(msg)) => {
                    failures.push(format!("{}: {msg}", self.pools[s].down_label()))
                }
                Err(ShardError::Down(label)) => failures.push(label),
            }
        }
        if !failures.is_empty() {
            return self.write_failure("INSERT", index, &failures);
        }
        Response::Inserted { ids: assigned }
    }

    fn route_delete(&self, index: &str, ids: &[u32]) -> Response {
        let Some(p) = self.placement_of(index) else {
            return Response::Error(format!("no such index {index:?}"));
        };
        let mut groups: HashMap<usize, Vec<u32>> = HashMap::new();
        for &id in ids {
            groups.entry((id % p.mod_shards) as usize).or_default().push(id);
        }
        let targets: Vec<usize> = {
            let mut t: Vec<usize> = groups.keys().copied().collect();
            t.sort_unstable();
            t
        };
        let results = self.fan_out(&targets, true, |s, c| c.delete(index, &groups[&s]));
        let mut removed = 0u64;
        let mut failures = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            let s = targets[i];
            match result {
                Ok(n) => {
                    removed += n;
                    self.adjust_len(index, s, -(n as i64));
                }
                Err(ShardError::Remote(msg)) => {
                    failures.push(format!("{}: {msg}", self.pools[s].down_label()))
                }
                Err(ShardError::Down(label)) => failures.push(label),
            }
        }
        if !failures.is_empty() {
            return self.write_failure("DELETE", index, &failures);
        }
        Response::Deleted { removed }
    }

    fn route_flush(&self, index: &str) -> Response {
        let Some(p) = self.placement_of(index) else {
            return Response::Error(format!("no such index {index:?}"));
        };
        let targets: Vec<usize> = (0..p.mod_shards as usize).collect();
        let results = self.fan_out(&targets, true, |_, c| c.flush(index));
        let mut paths = Vec::new();
        let mut segments = 0u32;
        let mut live_rows = 0u64;
        let mut failures = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            match result {
                Ok((path, segs, rows)) => {
                    paths.push(path);
                    segments += segs;
                    live_rows += rows;
                }
                Err(ShardError::Remote(msg)) => {
                    failures.push(format!("{}: {msg}", self.pools[targets[i]].down_label()))
                }
                Err(ShardError::Down(label)) => failures.push(label),
            }
        }
        if !failures.is_empty() {
            return self.write_failure("FLUSH", index, &failures);
        }
        Response::Flushed { snapshot_path: paths.join("; "), segments, live_rows }
    }

    /// CALIBRATE fans to every shard primary and fails closed like a
    /// write: a cluster where only some shards hold a table would turn
    /// planned requests into per-shard `Uncalibrated` errors. The
    /// summary aggregates pessimistically — the cluster can only
    /// promise the recall its weakest shard measured.
    fn route_calibrate(&self, index: &str, sample: u32, k: u32) -> Response {
        let Some(p) = self.placement_of(index) else {
            return Response::Error(format!("no such index {index:?}"));
        };
        let targets: Vec<usize> = (0..p.mod_shards as usize).collect();
        let results =
            self.fan_out(&targets, true, |_, c| c.calibrate(index, sample as usize, k as usize));
        let mut points = 0u32;
        let mut max_recall = f64::INFINITY;
        let mut sample_out = 0u32;
        let mut failures = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            match result {
                Ok((pts, mr, smp)) => {
                    points += pts;
                    max_recall = max_recall.min(mr);
                    sample_out = sample_out.max(smp);
                }
                Err(ShardError::Remote(msg)) => {
                    failures.push(format!("{}: {msg}", self.pools[targets[i]].down_label()))
                }
                Err(ShardError::Down(label)) => failures.push(label),
            }
        }
        if !failures.is_empty() {
            return self.write_failure("CALIBRATE", index, &failures);
        }
        Response::Calibrated { points, max_recall, sample: sample_out }
    }
}

/// Renames a shard's stats entry `name` → `name@shard<i>`, truncating
/// the base name if the suffix would push past the wire's name cap.
fn shard_entry(mut entry: StatsEntry, label: &str) -> StatsEntry {
    let budget = MAX_NAME - (label.len() + 1);
    if entry.name.len() > budget {
        let mut end = budget;
        while !entry.name.is_char_boundary(end) {
            end -= 1;
        }
        entry.name.truncate(end);
    }
    entry.name = format!("{}@{label}", entry.name);
    entry
}

/// Folds one shard's stats entry into the cluster aggregate: counters
/// sum, `max_micros` maxes, histograms add element-wise (quantiles are
/// recomputed by the caller once every shard is folded in).
fn merge_stats(agg: &mut StatsEntry, e: &StatsEntry) {
    agg.queries += e.queries;
    agg.batch_requests += e.batch_requests;
    agg.batch_queries += e.batch_queries;
    agg.inserts += e.inserts;
    agg.deletes += e.deletes;
    agg.flushes += e.flushes;
    agg.wal_records += e.wal_records;
    agg.wal_bytes += e.wal_bytes;
    agg.seals += e.seals;
    agg.candidates_scanned += e.candidates_scanned;
    agg.heap_pushes += e.heap_pushes;
    agg.sq8_pruned += e.sq8_pruned;
    agg.planned += e.planned;
    agg.degraded += e.degraded;
    // The cluster is only as calibrated as its least-calibrated shard;
    // the age reports the oldest sweep still serving.
    agg.cal = match (agg.cal.as_str(), e.cal.as_str()) {
        ("none", _) | (_, "none") => "none".into(),
        ("stale", _) | (_, "stale") => "stale".into(),
        _ => "fresh".into(),
    };
    agg.cal_age_secs = agg.cal_age_secs.max(e.cal_age_secs);
    agg.total_micros += e.total_micros;
    agg.max_micros = agg.max_micros.max(e.max_micros);
    if agg.latency_hist.len() < e.latency_hist.len() {
        agg.latency_hist.resize(e.latency_hist.len(), 0);
    }
    for (i, b) in e.latency_hist.iter().enumerate() {
        agg.latency_hist[i] += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_parses_primaries_and_replicas() {
        let shards =
            parse_topology("127.0.0.1:7701, 127.0.0.1:7702,r0@127.0.0.1:7711,replica1@h:9,r@h:10")
                .unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].primary, "127.0.0.1:7701");
        assert_eq!(shards[0].replicas, vec!["127.0.0.1:7711".to_string()]);
        assert_eq!(
            shards[1].replicas,
            vec!["h:9".to_string(), "h:10".to_string()],
            "bare r@ attaches to the most recent shard"
        );
    }

    #[test]
    fn bad_topologies_are_rejected() {
        for bad in [
            "",                      // nothing
            "127.0.0.1:1,,127.0.0.1:2", // empty element
            "r0@127.0.0.1:1",        // replica before any shard
            "127.0.0.1:1,r5@h:2",    // replica of an unlisted shard
            "localhost",             // no port
            "r@h:1",                 // bare replica with no shard yet
        ] {
            assert!(parse_topology(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn shard_entries_respect_the_name_cap() {
        let long = "x".repeat(MAX_NAME);
        let entry = StatsEntry {
            name: long,
            spec: String::new(),
            load_mode: "owned".into(),
            sq8: false,
            queries: 0,
            batch_requests: 0,
            batch_queries: 0,
            inserts: 0,
            deletes: 0,
            flushes: 0,
            wal_records: 0,
            wal_bytes: 0,
            seals: 0,
            candidates_scanned: 0,
            total_micros: 0,
            max_micros: 0,
            latency_hist: vec![],
            p50_micros: 0,
            p99_micros: 0,
            heap_pushes: 0,
            sq8_pruned: 0,
            planned: 0,
            degraded: 0,
            cal: "none".into(),
            cal_age_secs: 0,
        };
        let renamed = shard_entry(entry, "shard12");
        assert!(renamed.name.len() <= MAX_NAME);
        assert!(renamed.name.ends_with("@shard12"));
    }

    #[test]
    fn stats_merge_sums_histograms_and_maxes_max() {
        let mut agg = StatsEntry {
            name: "x".into(),
            spec: String::new(),
            load_mode: "router".into(),
            sq8: true,
            queries: 5,
            batch_requests: 0,
            batch_queries: 0,
            inserts: 1,
            deletes: 0,
            flushes: 0,
            wal_records: 0,
            wal_bytes: 0,
            seals: 0,
            candidates_scanned: 10,
            total_micros: 100,
            max_micros: 40,
            latency_hist: vec![1, 2],
            p50_micros: 0,
            p99_micros: 0,
            heap_pushes: 4,
            sq8_pruned: 3,
            planned: 2,
            degraded: 1,
            cal: "fresh".into(),
            cal_age_secs: 10,
        };
        let other = StatsEntry {
            latency_hist: vec![0, 1, 7],
            max_micros: 90,
            queries: 2,
            planned: 3,
            degraded: 0,
            cal: "stale".into(),
            cal_age_secs: 45,
            ..agg.clone()
        };
        merge_stats(&mut agg, &other);
        assert_eq!(agg.queries, 7);
        assert_eq!(agg.max_micros, 90);
        assert_eq!(agg.latency_hist, vec![1, 3, 7], "histograms add element-wise");
        assert_eq!(agg.total_micros, 200);
        assert_eq!(agg.heap_pushes, 8, "funnel counters sum like the others");
        assert_eq!(agg.sq8_pruned, 6);
        assert_eq!(agg.planned, 5, "planner counters sum");
        assert_eq!(agg.degraded, 1);
        assert_eq!(agg.cal, "stale", "a stale shard makes the cluster stale");
        assert_eq!(agg.cal_age_secs, 45, "age is the oldest sweep");
    }
}
