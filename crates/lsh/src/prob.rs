//! Collision-probability and hash-quality math (paper §2.2 and §5).
//!
//! * Eq. (2): collision probability of the random-projection family,
//!   `p(τ) = 1 − 2Φ(−w/τ) − (2/(√(2π) w/τ)) (1 − e^{−(w/τ)²/2})`.
//! * Eq. (4): cross-polytope, `ln(1/p(τ)) = (τ²/(4−τ²)) ln d + O_τ(ln ln d)`.
//! * Eq. (5): cross-polytope hash quality
//!   `ρ = (1/c²) · (4 − c²R²)/(4 − R²) + o(1)`.
//! * Bit sampling: `p(τ) = 1 − τ/d`.
//! * `ρ = ln(1/p₁)/ln(1/p₂)` (Theorem 2.1), used by the λ setting of
//!   Theorem 5.1 in `lccs-lsh::theory`.

/// Standard normal CDF `Φ(x)`, via `erf` with ≤ 1.2e-7 absolute error
/// (Abramowitz & Stegun 7.1.26 applied to erfc, accurate everywhere).
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function `erf(x)` with ≤ 1.2e-7 absolute error (A&S 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Eq. (2): collision probability of `h_{a,b}` for two points at Euclidean
/// distance `tau` with bucket width `w`.
///
/// # Panics
/// Panics if `tau < 0` or `w <= 0`.
pub fn collision_probability_euclidean(tau: f64, w: f64) -> f64 {
    assert!(tau >= 0.0, "distance must be non-negative");
    assert!(w > 0.0, "bucket width must be positive");
    if tau == 0.0 {
        return 1.0;
    }
    let r = w / tau;
    let p = 1.0 - 2.0 * phi(-r)
        - 2.0 / ((2.0 * std::f64::consts::PI).sqrt() * r) * (1.0 - (-r * r / 2.0).exp());
    p.clamp(0.0, 1.0)
}

/// Eq. (4): asymptotic collision probability of the cross-polytope family
/// for two unit vectors at Euclidean distance `tau ∈ (0, 2)` in dimension
/// `d` (the `O_τ(ln ln d)` term is dropped, as in FALCONN's own tuning).
///
/// # Panics
/// Panics if `tau` is outside `(0, 2)` or `d < 2`.
pub fn collision_probability_cross_polytope(tau: f64, d: usize) -> f64 {
    assert!(tau > 0.0 && tau < 2.0, "tau must lie in (0, 2), got {tau}");
    assert!(d >= 2, "dimension must be at least 2");
    let ln_inv_p = tau * tau / (4.0 - tau * tau) * (d as f64).ln();
    (-ln_inv_p).exp()
}

/// Bit-sampling collision probability `1 − τ/d` at Hamming distance `tau`.
pub fn collision_probability_hamming(tau: f64, d: usize) -> f64 {
    assert!(d > 0);
    (1.0 - tau / d as f64).clamp(0.0, 1.0)
}

/// Hash quality `ρ = ln(1/p1) / ln(1/p2)` (Theorem 2.1). Returns a value in
/// `(0, 1)` for any valid `0 < p2 < p1 < 1`.
///
/// # Panics
/// Panics unless `0 < p2 < p1 < 1`.
pub fn rho(p1: f64, p2: f64) -> f64 {
    assert!(0.0 < p2 && p2 < p1 && p1 < 1.0, "need 0 < p2 < p1 < 1, got p1={p1}, p2={p2}");
    (1.0 / p1).ln() / (1.0 / p2).ln()
}

/// Eq. (5): cross-polytope hash quality for radius `R` and ratio `c` on the
/// unit sphere (the `o(1)` term is dropped).
///
/// # Panics
/// Panics unless `0 < R < 2/c` and `c > 1` (so that `cR < 2`).
pub fn rho_cross_polytope(c: f64, r: f64) -> f64 {
    assert!(c > 1.0, "approximation ratio must exceed 1");
    assert!(r > 0.0 && c * r < 2.0, "need 0 < cR < 2");
    (1.0 / (c * c)) * (4.0 - c * c * r * r) / (4.0 - r * r)
}

/// The ρ* bound of §5.2 for cross-polytope: `ρ_R ≤ 1/c²` for all R, which is
/// what lets a single LCCS-LSH index serve all radii.
pub fn rho_star_cross_polytope(c: f64) -> f64 {
    assert!(c > 1.0);
    1.0 / (c * c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
    }

    #[test]
    fn phi_reference_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.959_963_985) - 0.975).abs() < 1e-5);
        assert!((phi(-1.0) - 0.158_655_25).abs() < 1e-6);
    }

    #[test]
    fn eq2_limits() {
        // τ → 0 gives certainty; huge τ gives ~0.
        assert_eq!(collision_probability_euclidean(0.0, 4.0), 1.0);
        assert!(collision_probability_euclidean(1e6, 4.0) < 1e-3);
    }

    #[test]
    fn eq2_monotone_decreasing_in_tau() {
        let w = 4.0;
        let mut prev = 1.0;
        for i in 1..100 {
            let tau = i as f64 * 0.2;
            let p = collision_probability_euclidean(tau, w);
            assert!(p <= prev + 1e-12, "p must decrease with tau");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn eq2_known_value() {
        // At w/τ = 1: p = 1 − 2Φ(−1) − 2/√(2π) (1 − e^{−1/2})
        //           = 1 − 0.3173105 − 0.7978846·0.3934693 = 0.3687
        let p = collision_probability_euclidean(4.0, 4.0);
        assert!((p - 0.3687).abs() < 1e-3, "{p}");
    }

    #[test]
    fn cross_polytope_monotone_in_tau_and_d() {
        let p_close = collision_probability_cross_polytope(0.5, 128);
        let p_far = collision_probability_cross_polytope(1.5, 128);
        assert!(p_close > p_far);
        let p_lo_d = collision_probability_cross_polytope(1.0, 16);
        let p_hi_d = collision_probability_cross_polytope(1.0, 1024);
        assert!(p_lo_d > p_hi_d, "collisions get rarer as d grows");
    }

    #[test]
    fn hamming_probability() {
        assert_eq!(collision_probability_hamming(0.0, 10), 1.0);
        assert!((collision_probability_hamming(2.0, 10) - 0.8).abs() < 1e-12);
        assert_eq!(collision_probability_hamming(20.0, 10), 0.0);
    }

    #[test]
    fn rho_basic_properties() {
        let r = rho(0.9, 0.5);
        assert!(r > 0.0 && r < 1.0);
        // Larger gap -> smaller rho.
        assert!(rho(0.9, 0.3) < rho(0.9, 0.5));
    }

    #[test]
    fn rho_cp_matches_eq5_and_bound() {
        let c = 2.0;
        let r = 0.5;
        let v = rho_cross_polytope(c, r);
        // (1/4)·(4 − 1)/(4 − 0.25) = 0.25·3/3.75 = 0.2
        assert!((v - 0.2).abs() < 1e-12);
        assert!(v <= rho_star_cross_polytope(c) + 1e-12);
    }

    #[test]
    fn rho_cp_bounded_by_rho_star_over_grid() {
        let c = 1.5;
        for i in 1..100 {
            let r = i as f64 * (2.0 / c) / 101.0;
            assert!(rho_cross_polytope(c, r) <= rho_star_cross_polytope(c) + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "0 < p2 < p1 < 1")]
    fn rho_rejects_bad_order() {
        rho(0.3, 0.5);
    }
}
