//! Bit-sampling family for Hamming distance (Indyk–Motwani, STOC 1998).
//!
//! `h_i(o) = o_i` for a uniformly random coordinate `i`. Collision
//! probability at Hamming distance τ is exactly `1 − τ/d`. The paper uses
//! this family in §5.2 as the example where computing a hash value costs
//! η(d) = O(1), the regime where the α = 1/(1−ρ) configuration of LCCS-LSH
//! shines (constant candidates, hash cost dominates).

use crate::family::{LshFunction, ScoredAlt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One sampled bit-sampling function (a fixed coordinate).
#[derive(Debug, Clone, Copy)]
pub struct BitSampling {
    coord: usize,
}

impl BitSampling {
    /// Samples a coordinate uniformly from `0..dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn sample(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        Self { coord: rng.gen_range(0..dim) }
    }

    /// The sampled coordinate.
    pub fn coord(&self) -> usize {
        self.coord
    }
}

impl LshFunction for BitSampling {
    #[inline]
    fn hash(&self, v: &[f32]) -> u64 {
        u64::from(v[self.coord] >= 0.5)
    }

    /// The only alternative in a binary alphabet is the flipped bit; its
    /// score is the constant 1 (one coordinate flip).
    fn alternatives(&self, v: &[f32], max_alts: usize) -> Vec<ScoredAlt> {
        if max_alts == 0 {
            return Vec::new();
        }
        vec![ScoredAlt { symbol: 1 - self.hash(v), score: 1.0 }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_reads_the_sampled_coordinate() {
        let f = BitSampling { coord: 2 };
        assert_eq!(f.hash(&[0.0, 0.0, 1.0, 0.0]), 1);
        assert_eq!(f.hash(&[1.0, 1.0, 0.0, 1.0]), 0);
    }

    #[test]
    fn collision_probability_matches_one_minus_tau_over_d() {
        let d = 50;
        let a = vec![0.0f32; d];
        let mut b = vec![0.0f32; d];
        for x in b.iter_mut().take(10) {
            *x = 1.0; // Hamming distance 10, expected collision prob 0.8
        }
        let trials: u32 = 2000;
        let mut coll = 0;
        for s in 0..trials {
            let f = BitSampling::sample(d, s.into());
            coll += u32::from(f.hash(&a) == f.hash(&b));
        }
        let emp = f64::from(coll) / f64::from(trials);
        assert!((emp - 0.8).abs() < 0.04, "empirical {emp}");
    }

    #[test]
    fn alternative_is_flip() {
        let f = BitSampling { coord: 0 };
        let alts = f.alternatives(&[1.0], 4);
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].symbol, 0);
    }

    #[test]
    fn sampling_deterministic() {
        assert_eq!(BitSampling::sample(100, 5).coord(), BitSampling::sample(100, 5).coord());
    }
}
