//! The cross-polytope family for Angular distance
//! (Terasawa–Tanaka 2007; Andoni et al., NeurIPS 2015) — the paper's Eq. (3):
//!
//! ```text
//! h_A(o) = argmin_j || u_j − A·o / ||A·o|| ||,   u_j ∈ {± e_i}
//! ```
//!
//! i.e. rotate the (normalized) input and snap it to the nearest signed
//! standard basis vector — a vertex of the d-dimensional cross-polytope.
//! The symbol space has 2·d' values (`d'` = padded dimension).
//!
//! Two rotation backends are provided:
//!
//! * [`Rotation::Dense`] — a true Gaussian matrix, O(d²) per hash, the
//!   textbook construction used for correctness baselines;
//! * [`Rotation::FastHadamard`] — FALCONN's pseudo-random rotation
//!   `H D₃ H D₂ H D₁` with random sign diagonals, O(d log d) per hash, which
//!   is what makes cross-polytope hashing practical at Gist-like d = 960.

use crate::family::{LshFunction, ScoredAlt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, StandardNormal};

/// Rotation backend for [`CrossPolytope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rotation {
    /// Dense Gaussian random rotation (exact, O(d²)).
    Dense,
    /// Three Hadamard-transform blocks with random sign flips (O(d log d)).
    FastHadamard,
}

/// One sampled cross-polytope hash function.
#[derive(Debug, Clone)]
pub struct CrossPolytope {
    dim: usize,
    padded: usize,
    backend: Backend,
}

#[derive(Debug, Clone)]
enum Backend {
    /// Row-major `padded × dim` Gaussian matrix.
    Dense(Vec<f32>),
    /// Three ±1 diagonals of length `padded`.
    Fast([Vec<f32>; 3]),
}

/// Encodes a polytope vertex `± e_i` as a symbol: `2 i + (sign < 0)`.
#[inline]
pub fn vertex_to_symbol(axis: usize, negative: bool) -> u64 {
    (axis as u64) << 1 | u64::from(negative)
}

/// Decodes a symbol back to `(axis, negative)`.
#[inline]
pub fn symbol_to_vertex(sym: u64) -> (usize, bool) {
    ((sym >> 1) as usize, sym & 1 == 1)
}

impl CrossPolytope {
    /// Samples a function for input dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn sample(dim: usize, rotation: Rotation, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let padded = dim.next_power_of_two();
        let mut rng = StdRng::seed_from_u64(seed);
        let backend = match rotation {
            Rotation::Dense => {
                let mut mat = vec![0.0f32; padded * dim];
                for x in &mut mat {
                    let g: f64 = StandardNormal.sample(&mut rng);
                    *x = g as f32;
                }
                Backend::Dense(mat)
            }
            Rotation::FastHadamard => {
                let mut diags: [Vec<f32>; 3] = Default::default();
                for d in &mut diags {
                    *d = (0..padded).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
                }
                Backend::Fast(diags)
            }
        };
        Self { dim, padded, backend }
    }

    /// The rotated vector `A·v` (padded to a power of two).
    pub fn rotate(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        match &self.backend {
            Backend::Dense(mat) => {
                let mut out = vec![0.0f32; self.padded];
                for (r, o) in out.iter_mut().enumerate() {
                    let row = &mat[r * self.dim..(r + 1) * self.dim];
                    *o = dataset::metric::dot(row, v) as f32;
                }
                out
            }
            Backend::Fast(diags) => {
                let mut buf = vec![0.0f32; self.padded];
                buf[..self.dim].copy_from_slice(v);
                for diag in diags {
                    for (x, s) in buf.iter_mut().zip(diag) {
                        *x *= s;
                    }
                    fht(&mut buf);
                }
                buf
            }
        }
    }

    /// The index of the winning axis and its signed value, i.e. the argmax of
    /// |y_i| over the rotated vector y.
    fn argmax(&self, v: &[f32]) -> (usize, f32) {
        let y = self.rotate(v);
        let mut best = 0usize;
        let mut best_abs = -1.0f32;
        for (i, &x) in y.iter().enumerate() {
            if x.abs() > best_abs {
                best_abs = x.abs();
                best = i;
            }
        }
        (best, y[best])
    }

    /// Number of distinct symbols: `2 × padded`.
    pub fn num_vertices(&self) -> usize {
        2 * self.padded
    }
}

/// In-place fast Walsh–Hadamard transform (unnormalized). Length must be a
/// power of two.
pub fn fht(buf: &mut [f32]) {
    debug_assert!(buf.len().is_power_of_two());
    let mut h = 1;
    while h < buf.len() {
        let mut i = 0;
        while i < buf.len() {
            for j in i..i + h {
                let x = buf[j];
                let y = buf[j + h];
                buf[j] = x + y;
                buf[j + h] = x - y;
            }
            i += 2 * h;
        }
        h *= 2;
    }
}

impl LshFunction for CrossPolytope {
    #[inline]
    fn hash(&self, v: &[f32]) -> u64 {
        let (axis, val) = self.argmax(v);
        vertex_to_symbol(axis, val < 0.0)
    }

    /// Other polytope vertices ranked by proximity to the rotated query.
    /// For a unit vector y, `||y − u||² = 2 − 2·⟨y, u⟩`, so ranking vertices
    /// by decreasing signed coordinate magnitude is exact; the score stored
    /// is `max_coord − |y_i|` (0 for the best alternative), matching
    /// FALCONN's log-likelihood-style ordering up to monotone transform.
    fn alternatives(&self, v: &[f32], max_alts: usize) -> Vec<ScoredAlt> {
        let y = self.rotate(v);
        let norm = dataset::metric::norm(&y).max(1e-30);
        let mut scored: Vec<ScoredAlt> = Vec::with_capacity(2 * y.len());
        let mut best_abs = 0.0f64;
        for &x in &y {
            best_abs = best_abs.max(f64::from(x.abs()));
        }
        for (i, &x) in y.iter().enumerate() {
            let xi = f64::from(x) / norm;
            // vertex +e_i at distance² 2 − 2·xi ; vertex −e_i at 2 + 2·xi.
            scored.push(ScoredAlt { symbol: vertex_to_symbol(i, false), score: 2.0 - 2.0 * xi });
            scored.push(ScoredAlt { symbol: vertex_to_symbol(i, true), score: 2.0 + 2.0 * xi });
        }
        scored.sort_by(|a, b| a.score.total_cmp(&b.score));
        // The first entry is the base hash itself; drop it.
        scored.remove(0);
        scored.truncate(max_alts);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_symbol_roundtrip() {
        for axis in [0usize, 1, 7, 100] {
            for neg in [false, true] {
                assert_eq!(symbol_to_vertex(vertex_to_symbol(axis, neg)), (axis, neg));
            }
        }
    }

    #[test]
    fn fht_matches_direct_hadamard() {
        let mut v = vec![1.0f32, 2.0, 3.0, 4.0];
        fht(&mut v);
        // H4 * [1,2,3,4] = [10, -2, -4, 0]
        assert_eq!(v, vec![10.0, -2.0, -4.0, 0.0]);
    }

    #[test]
    fn fht_is_self_inverse_up_to_scale() {
        let orig = vec![0.5f32, -1.0, 2.0, 0.25, 3.0, -0.5, 1.5, 0.0];
        let mut v = orig.clone();
        fht(&mut v);
        fht(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a / 8.0 - b).abs() < 1e-5);
        }
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        for rot in [Rotation::Dense, Rotation::FastHadamard] {
            let f = CrossPolytope::sample(10, rot, 3);
            let v = vec![0.3f32; 10];
            assert_eq!(f.hash(&v), f.hash(&v));
            assert!((f.hash(&v) as usize) < f.num_vertices());
        }
    }

    #[test]
    fn nearby_directions_collide_more() {
        let dim = 24;
        let base: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut close = base.clone();
        close[0] += 0.1;
        let far: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7 + 2.0).cos()).collect();

        for rot in [Rotation::Dense, Rotation::FastHadamard] {
            let mut cc = 0;
            let mut cf = 0;
            for s in 0..300 {
                let f = CrossPolytope::sample(dim, rot, s);
                let hb = f.hash(&base);
                cc += u32::from(f.hash(&close) == hb);
                cf += u32::from(f.hash(&far) == hb);
            }
            assert!(cc > cf + 30, "{rot:?}: close {cc} vs far {cf}");
        }
    }

    #[test]
    fn antipodal_points_get_opposite_vertices() {
        let f = CrossPolytope::sample(16, Rotation::Dense, 11);
        let v: Vec<f32> = (0..16).map(|i| (i as f32).cos()).collect();
        let neg: Vec<f32> = v.iter().map(|x| -x).collect();
        let (a1, n1) = symbol_to_vertex(f.hash(&v));
        let (a2, n2) = symbol_to_vertex(f.hash(&neg));
        assert_eq!(a1, a2);
        assert_ne!(n1, n2);
    }

    #[test]
    fn alternatives_exclude_base_and_are_sorted() {
        let f = CrossPolytope::sample(12, Rotation::FastHadamard, 9);
        let v: Vec<f32> = (0..12).map(|i| (i as f32 * 1.3).sin()).collect();
        let base = f.hash(&v);
        let alts = f.alternatives(&v, 10);
        assert_eq!(alts.len(), 10);
        assert!(alts.iter().all(|a| a.symbol != base));
        for w in alts.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
        // First alternative of a cross-polytope hash is typically the
        // second-largest |coordinate| vertex; its score must be ≥ 0 (base's
        // own score is the minimum).
        assert!(alts[0].score >= 0.0);
    }

    #[test]
    fn rotation_preserves_norm_fast() {
        // HD blocks are orthogonal up to scaling: ||rot(v)|| = c · ||v||
        // with c = padded^{3/2} for three unnormalized Hadamard passes.
        let f = CrossPolytope::sample(8, Rotation::FastHadamard, 2);
        let v = vec![1.0f32, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let u = vec![0.0f32, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let nv = dataset::metric::norm(&f.rotate(&v));
        let nu = dataset::metric::norm(&f.rotate(&u));
        assert!((nv - nu).abs() / nv < 1e-5);
    }
}
