//! LSH function families (paper §2.2).
//!
//! An LSH *scheme* = LSH *family* + *search framework*. This crate provides
//! the family side for the whole reproduction; the search frameworks (the
//! paper's LCCS framework and the baselines' static-concatenation and
//! collision-counting frameworks) live in `lccs-lsh` and `baselines`.
//!
//! Implemented families:
//!
//! * [`random_projection`] — the p-stable family of Datar et al. for
//!   Euclidean distance, Eq. (1), with the collision probability of Eq. (2).
//! * [`cross_polytope`] — the family of Terasawa–Tanaka / Andoni et al. for
//!   Angular distance, Eq. (3)–(5), with both a dense Gaussian rotation and
//!   the FALCONN-style fast pseudo-random (HD₃HD₂HD₁) rotation.
//! * [`bit_sampling`] — Indyk–Motwani's family for Hamming distance, the
//!   η(d) = O(1) case discussed in §5.2.
//! * [`minhash`] — Broder's family for Jaccard distance, demonstrating the
//!   "LSH-family-independent" claim on a non-vector-space metric.
//! * [`prob`] — collision-probability and hash-quality (ρ) math.
//!
//! Every sampled function maps a vector to a `u64` **symbol**; a collection
//! of `m` functions maps a vector to a *hash string* of length `m`, the
//! object the LCCS framework operates on. Each function can also enumerate
//! scored *alternative* symbols for multi-probe schemes (Multi-Probe LSH,
//! FALCONN, and the paper's MP-LCCS-LSH all consume these).
//!
//! Where this crate sits in the workspace is mapped in
//! `docs/architecture.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bit_sampling;
pub mod cross_polytope;
pub mod family;
pub mod minhash;
pub mod prob;
pub mod random_projection;

pub use bit_sampling::BitSampling;
pub use cross_polytope::{CrossPolytope, Rotation};
pub use family::{
    hash_dataset, hash_query, sample_family, FamilyKind, FamilyParams, LshFunction, ScoredAlt,
};
pub use minhash::MinHash;
pub use random_projection::RandomProjection;
