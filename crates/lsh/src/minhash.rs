//! MinHash family for Jaccard distance (Broder 1997).
//!
//! Vectors are interpreted as indicator sets over their non-zero
//! coordinates. A sampled function applies a random permutation π of the
//! universe (implemented as a keyed integer mixer, i.e. a random hash
//! ordering — the standard practical construction) and returns the position
//! with the smallest π-value inside the support:
//! `Pr[h(A) = h(B)] = |A ∩ B| / |A ∪ B| = 1 − d_J(A, B)`.
//!
//! Included to demonstrate the paper's claim that LCCS-LSH "supports the
//! distance metrics if and only if there exist LSH families for them" — the
//! CSA layer is completely agnostic to which family produced the symbols.

use crate::family::{LshFunction, ScoredAlt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One sampled MinHash function.
#[derive(Debug, Clone, Copy)]
pub struct MinHash {
    key: u64,
}

#[inline]
fn mix(key: u64, x: u64) -> u64 {
    // splitmix64 finalizer keyed by the function's seed: a fast, high-quality
    // stand-in for a random permutation of coordinate indices.
    let mut z = x.wrapping_add(key).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl MinHash {
    /// Samples a function (the dimension is only used to validate inputs).
    pub fn sample(_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self { key: rng.gen() }
    }

    /// Returns the coordinate of the support with the minimal permuted value,
    /// together with that value, or `None` for an empty support.
    fn min_pair(&self, v: &[f32]) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64)> = None;
        for (i, &x) in v.iter().enumerate() {
            if x != 0.0 {
                let p = mix(self.key, i as u64);
                if best.is_none_or(|(bp, _)| p < bp) {
                    best = Some((p, i as u64));
                }
            }
        }
        best
    }
}

impl LshFunction for MinHash {
    #[inline]
    fn hash(&self, v: &[f32]) -> u64 {
        // Empty supports all hash to a dedicated sentinel (they are mutually
        // at Jaccard distance 0, so colliding them is correct).
        match self.min_pair(v) {
            Some((_, idx)) => idx,
            None => u64::MAX,
        }
    }

    /// The natural alternative is the coordinate with the second-smallest
    /// permuted value (the min over the support with the winner removed).
    fn alternatives(&self, v: &[f32], max_alts: usize) -> Vec<ScoredAlt> {
        if max_alts == 0 {
            return Vec::new();
        }
        let Some((best_p, best_i)) = self.min_pair(v) else { return Vec::new() };
        let mut second: Option<(u64, u64)> = None;
        for (i, &x) in v.iter().enumerate() {
            if x != 0.0 && i as u64 != best_i {
                let p = mix(self.key, i as u64);
                if second.is_none_or(|(sp, _)| p < sp) {
                    second = Some((p, i as u64));
                }
            }
        }
        second
            .map(|(p, i)| {
                vec![ScoredAlt { symbol: i, score: (p - best_p) as f64 / u64::MAX as f64 }]
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_always_collide() {
        let v = [1.0f32, 0.0, 2.0, 0.0, 3.0];
        for s in 0..50 {
            let f = MinHash::sample(5, s);
            assert_eq!(f.hash(&v), f.hash(&v));
        }
    }

    #[test]
    fn hash_is_a_support_member() {
        let v = [0.0f32, 1.0, 0.0, 1.0, 1.0, 0.0];
        let f = MinHash::sample(6, 3);
        let h = f.hash(&v) as usize;
        assert!(v[h] != 0.0, "minhash must return a support coordinate");
    }

    #[test]
    fn collision_rate_estimates_jaccard() {
        // A = {0..19}, B = {10..29}: |A∩B| = 10, |A∪B| = 30, sim = 1/3.
        let mut a = vec![0.0f32; 40];
        let mut b = vec![0.0f32; 40];
        for x in a.iter_mut().take(20) {
            *x = 1.0;
        }
        for x in b.iter_mut().take(30).skip(10) {
            *x = 1.0;
        }
        let trials: u32 = 3000;
        let mut coll = 0;
        for s in 0..trials {
            let f = MinHash::sample(40, s.into());
            coll += u32::from(f.hash(&a) == f.hash(&b));
        }
        let emp = f64::from(coll) / f64::from(trials);
        assert!((emp - 1.0 / 3.0).abs() < 0.04, "empirical {emp}");
    }

    #[test]
    fn empty_support_sentinel() {
        let f = MinHash::sample(4, 1);
        assert_eq!(f.hash(&[0.0; 4]), u64::MAX);
        assert!(f.alternatives(&[0.0; 4], 3).is_empty());
    }

    #[test]
    fn alternative_is_second_min() {
        let v = [1.0f32, 1.0, 1.0, 0.0];
        let f = MinHash::sample(4, 9);
        let h = f.hash(&v);
        let alts = f.alternatives(&v, 2);
        assert_eq!(alts.len(), 1);
        assert_ne!(alts[0].symbol, h);
        assert!(v[alts[0].symbol as usize] != 0.0);
    }
}
