//! The p-stable random-projection family for Euclidean distance
//! (Datar et al., SoCG 2004) — the paper's Eq. (1):
//!
//! ```text
//! h_{a,b}(o) = floor((a · o + b) / w)
//! ```
//!
//! with `a ~ N(0, I_d)` and `b ~ U[0, w)`. The collision probability for two
//! objects at Euclidean distance τ is Eq. (2), implemented in
//! [`crate::prob::collision_probability_euclidean`].

use crate::family::{LshFunction, ScoredAlt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, StandardNormal};

/// One sampled function `h_{a,b}` of the random-projection family.
#[derive(Debug, Clone)]
pub struct RandomProjection {
    a: Vec<f32>,
    b: f64,
    w: f64,
}

/// Maps a signed bucket index to a `u64` symbol (ZigZag encoding), keeping
/// adjacent buckets adjacent in the *signed* sense while covering the whole
/// integer range. The CSA only needs symbol equality and a total order; for
/// multi-probe we need to move to neighbouring buckets, which the encoding
/// preserves through [`bucket_to_symbol`]/[`symbol_to_bucket`].
#[inline]
pub fn bucket_to_symbol(bucket: i64) -> u64 {
    ((bucket << 1) ^ (bucket >> 63)) as u64
}

/// Inverse of [`bucket_to_symbol`].
#[inline]
pub fn symbol_to_bucket(sym: u64) -> i64 {
    ((sym >> 1) as i64) ^ -((sym & 1) as i64)
}

impl RandomProjection {
    /// Samples a function for dimension `dim` with bucket width `w`.
    ///
    /// # Panics
    /// Panics if `w <= 0` or `dim == 0`.
    pub fn sample(dim: usize, w: f64, seed: u64) -> Self {
        assert!(w > 0.0, "bucket width must be positive");
        assert!(dim > 0, "dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..dim)
            .map(|_| {
                let g: f64 = StandardNormal.sample(&mut rng);
                g as f32
            })
            .collect();
        let b = rng.gen_range(0.0..w);
        Self { a, b, w }
    }

    /// The raw (un-floored) projection `(a·v + b) / w`.
    #[inline]
    pub fn projection(&self, v: &[f32]) -> f64 {
        assert_eq!(v.len(), self.a.len(), "dimension mismatch");
        (dataset::metric::dot(&self.a, v) + self.b) / self.w
    }

    /// Signed bucket index `floor((a·v + b)/w)`.
    #[inline]
    pub fn bucket(&self, v: &[f32]) -> i64 {
        self.projection(v).floor() as i64
    }

    /// Bucket width `w`.
    pub fn w(&self) -> f64 {
        self.w
    }
}

impl LshFunction for RandomProjection {
    #[inline]
    fn hash(&self, v: &[f32]) -> u64 {
        bucket_to_symbol(self.bucket(v))
    }

    /// Alternative buckets `h ± 1, h ± 2, …` ranked by the Multi-Probe LSH
    /// boundary-distance score. With `x` the fractional position of the
    /// projection inside its bucket (`x ∈ [0, 1)`), the (squared, in units of
    /// `w²`) distance to bucket `h + j` is `(j - x)²` and to `h - j` is
    /// `(x + j - 1)²` — Lv et al.'s `x_i(δ)²`.
    fn alternatives(&self, v: &[f32], max_alts: usize) -> Vec<ScoredAlt> {
        let proj = self.projection(v);
        let h = proj.floor();
        let x = proj - h; // in [0, 1)
        let h = h as i64;
        let mut alts = Vec::with_capacity(max_alts);
        // Generate candidates in pairs of increasing |j| and merge by score;
        // for a fixed j the scores are (j - x)² (up) vs (x + j - 1)² (down),
        // so generating j = 1..=ceil(max/2)+1 of each and sorting is exact.
        let levels = max_alts / 2 + 2;
        for j in 1..=levels as i64 {
            let up = (j as f64 - x) * (j as f64 - x);
            let down = (x + j as f64 - 1.0) * (x + j as f64 - 1.0);
            alts.push(ScoredAlt { symbol: bucket_to_symbol(h + j), score: up });
            alts.push(ScoredAlt { symbol: bucket_to_symbol(h - j), score: down });
        }
        alts.sort_by(|p, q| p.score.total_cmp(&q.score));
        alts.truncate(max_alts);
        alts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip() {
        for b in [-1_000_000i64, -3, -1, 0, 1, 2, 7, 1_000_000] {
            assert_eq!(symbol_to_bucket(bucket_to_symbol(b)), b);
        }
    }

    #[test]
    fn zigzag_is_injective_near_zero() {
        let syms: Vec<u64> = (-4i64..=4).map(bucket_to_symbol).collect();
        let mut dedup = syms.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), syms.len());
    }

    #[test]
    fn close_points_collide_more_often() {
        // Statistical check of the LSH property (Definition 2.3).
        let dim = 32;
        let close = 0.5f32;
        let far = 8.0f32;
        let base = vec![0.1f32; dim];
        let mut close_v = base.clone();
        close_v[0] += close;
        let mut far_v = base.clone();
        far_v[0] += far;

        let mut coll_close = 0;
        let mut coll_far = 0;
        let trials = 400;
        for s in 0..trials {
            let f = RandomProjection::sample(dim, 4.0, s);
            let hb = f.hash(&base);
            coll_close += u32::from(f.hash(&close_v) == hb);
            coll_far += u32::from(f.hash(&far_v) == hb);
        }
        assert!(
            coll_close > coll_far + trials as u32 / 10,
            "close {coll_close} vs far {coll_far}"
        );
    }

    #[test]
    fn empirical_collision_matches_eq2() {
        // Eq. (2) collision probability vs Monte-Carlo at w/τ = 2.
        let dim = 64;
        let tau = 2.0;
        let w = 4.0;
        let a = vec![0.0f32; dim];
        let mut b = vec![0.0f32; dim];
        b[0] = tau;
        let trials: u32 = 3000;
        let mut coll = 0;
        for s in 0..trials {
            let f = RandomProjection::sample(dim, w, s.into());
            coll += u32::from(f.hash(&a) == f.hash(&b));
        }
        let emp = f64::from(coll) / f64::from(trials);
        let theo = crate::prob::collision_probability_euclidean(tau.into(), w);
        assert!((emp - theo).abs() < 0.05, "empirical {emp} vs theoretical {theo}");
    }

    #[test]
    fn alternatives_sorted_and_exclude_base() {
        let f = RandomProjection::sample(8, 2.0, 7);
        let v = vec![0.3f32; 8];
        let base = f.hash(&v);
        let alts = f.alternatives(&v, 6);
        assert_eq!(alts.len(), 6);
        for w in alts.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
        assert!(alts.iter().all(|a| a.symbol != base));
    }

    #[test]
    fn first_alternative_is_nearest_boundary() {
        let f = RandomProjection::sample(4, 1.0, 3);
        let v = vec![0.9f32, -0.2, 0.4, 0.8];
        let proj = f.projection(&v);
        let x = proj - proj.floor();
        let alts = f.alternatives(&v, 2);
        let expected_first = if x > 0.5 { 1i64 } else { -1 };
        let base = f.bucket(&v);
        assert_eq!(symbol_to_bucket(alts[0].symbol), base + expected_first);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_w_panics() {
        RandomProjection::sample(4, 0.0, 1);
    }
}
