//! Family abstraction: sampled hash functions, scored multi-probe
//! alternatives, and parallel batch hashing.

use crate::{BitSampling, CrossPolytope, MinHash, RandomProjection, Rotation};
use dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An alternative symbol for multi-probe, with its perturbation score.
///
/// Scores follow the Multi-Probe LSH convention: *smaller is better* (a
/// score approximates the squared distance from the query to the region that
/// hashes to the alternative symbol). Alternatives are always returned in
/// ascending score order and never include the base symbol itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredAlt {
    /// The alternative symbol.
    pub symbol: u64,
    /// Perturbation score (smaller = more likely to contain near neighbors).
    pub score: f64,
}

/// One sampled LSH function `h : R^d -> U`, with `U` encoded as `u64`.
pub trait LshFunction: Send + Sync {
    /// Hashes a vector to its symbol.
    fn hash(&self, v: &[f32]) -> u64;

    /// Up to `max_alts` alternative symbols for multi-probe, ascending by
    /// score. The default implementation returns none, which degrades
    /// multi-probe schemes to single-probe for families without a natural
    /// perturbation structure.
    fn alternatives(&self, _v: &[f32], _max_alts: usize) -> Vec<ScoredAlt> {
        Vec::new()
    }
}

/// Which family to sample from. Carries no parameters; see [`FamilyParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FamilyKind {
    /// p-stable random projection (Euclidean), Eq. (1).
    RandomProjection,
    /// Cross-polytope (Angular), Eq. (3), dense Gaussian rotation.
    CrossPolytope,
    /// Cross-polytope with the FALCONN-style fast pseudo-rotation.
    CrossPolytopeFast,
    /// Bit sampling (Hamming).
    BitSampling,
    /// MinHash (Jaccard).
    MinHash,
}

/// Sampling parameters shared across families.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyParams {
    /// Bucket width `w` for random projection (ignored elsewhere). The
    /// paper fine-tunes w per dataset (§6.3, footnote 11).
    pub w: f64,
}

impl Default for FamilyParams {
    fn default() -> Self {
        Self { w: 4.0 }
    }
}

/// Samples `m` i.i.d. functions from the chosen family.
///
/// # Panics
/// Panics if `dim == 0` or `m == 0`.
pub fn sample_family(
    kind: FamilyKind,
    dim: usize,
    m: usize,
    params: &FamilyParams,
    seed: u64,
) -> Vec<Box<dyn LshFunction>> {
    assert!(dim > 0, "dimension must be positive");
    assert!(m > 0, "must sample at least one function");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| -> Box<dyn LshFunction> {
            let fseed: u64 = rng.gen();
            match kind {
                FamilyKind::RandomProjection => {
                    Box::new(RandomProjection::sample(dim, params.w, fseed))
                }
                FamilyKind::CrossPolytope => {
                    Box::new(CrossPolytope::sample(dim, Rotation::Dense, fseed))
                }
                FamilyKind::CrossPolytopeFast => {
                    Box::new(CrossPolytope::sample(dim, Rotation::FastHadamard, fseed))
                }
                FamilyKind::BitSampling => Box::new(BitSampling::sample(dim, fseed)),
                FamilyKind::MinHash => Box::new(MinHash::sample(dim, fseed)),
            }
        })
        .collect()
}

/// Computes the n×m hash-string matrix `H(o)` for a whole dataset, row-major
/// (`out[i*m + j] = h_j(o_i)`), fanned out over threads. This is the
/// indexing-phase hashing cost `O(n · m · η(d))` of §5.2.
pub fn hash_dataset(funcs: &[Box<dyn LshFunction>], data: &Dataset) -> Vec<u64> {
    let m = funcs.len();
    let n = data.len();
    let mut out = vec![0u64; n * m];
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(16);
    let chunk = n.div_ceil(threads).max(1);

    std::thread::scope(|scope| {
        for (t, slab) in out.chunks_mut(chunk * m).enumerate() {
            scope.spawn(move || {
                let start = t * chunk;
                for (r, row) in slab.chunks_exact_mut(m).enumerate() {
                    let v = data.get(start + r);
                    for (j, f) in funcs.iter().enumerate() {
                        row[j] = f.hash(v);
                    }
                }
            });
        }
    });
    out
}

/// Hashes one query into its length-m hash string.
pub fn hash_query(funcs: &[Box<dyn LshFunction>], q: &[f32]) -> Vec<u64> {
    funcs.iter().map(|f| f.hash(q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    #[test]
    fn sampling_is_deterministic() {
        let p = FamilyParams::default();
        let d = SynthSpec::new("t", 20, 16).generate(3);
        for kind in [
            FamilyKind::RandomProjection,
            FamilyKind::CrossPolytope,
            FamilyKind::CrossPolytopeFast,
            FamilyKind::BitSampling,
            FamilyKind::MinHash,
        ] {
            let f1 = sample_family(kind, 16, 8, &p, 42);
            let f2 = sample_family(kind, 16, 8, &p, 42);
            let h1 = hash_dataset(&f1, &d);
            let h2 = hash_dataset(&f2, &d);
            assert_eq!(h1, h2, "family {kind:?} must be seed-deterministic");
        }
    }

    #[test]
    fn different_functions_differ() {
        let p = FamilyParams::default();
        let funcs = sample_family(FamilyKind::RandomProjection, 32, 4, &p, 1);
        let d = SynthSpec::new("t", 50, 32).generate(9);
        let h = hash_dataset(&funcs, &d);
        // Column j and column j+1 should not be identical across all rows.
        let col = |j: usize| (0..50).map(|i| h[i * 4 + j]).collect::<Vec<_>>();
        assert_ne!(col(0), col(1));
    }

    #[test]
    fn hash_dataset_matches_hash_query() {
        let p = FamilyParams::default();
        let funcs = sample_family(FamilyKind::CrossPolytope, 12, 6, &p, 5);
        let d = SynthSpec::new("t", 33, 12).generate(2);
        let h = hash_dataset(&funcs, &d);
        for i in [0usize, 13, 32] {
            let row = hash_query(&funcs, d.get(i));
            assert_eq!(&h[i * 6..(i + 1) * 6], &row[..]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn zero_m_panics() {
        sample_family(FamilyKind::BitSampling, 4, 0, &FamilyParams::default(), 0);
    }
}
