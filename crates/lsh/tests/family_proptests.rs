//! Property tests of the LSH families: alternative ordering, determinism,
//! and the algebraic invariants of the symbol encodings, over randomized
//! vectors.

use lsh::random_projection::{bucket_to_symbol, symbol_to_bucket};
use lsh::{sample_family, FamilyKind, FamilyParams};
use proptest::prelude::*;

fn vector(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// ZigZag bucket encoding round-trips over the whole i64 range and
    /// preserves the ordering needed by C2LSH's virtual rehashing.
    #[test]
    fn zigzag_roundtrip(b in any::<i64>()) {
        prop_assert_eq!(symbol_to_bucket(bucket_to_symbol(b)), b);
    }

    /// Every family: hashing is deterministic, and alternatives are sorted
    /// ascending by score, never include the base symbol, and never repeat.
    #[test]
    fn alternatives_are_sorted_unique_and_exclude_base(
        v in vector(16),
        seed in 0u64..1000,
    ) {
        prop_assume!(v.iter().any(|&x| x != 0.0));
        for kind in [
            FamilyKind::RandomProjection,
            FamilyKind::CrossPolytope,
            FamilyKind::CrossPolytopeFast,
            FamilyKind::BitSampling,
            FamilyKind::MinHash,
        ] {
            let f = &sample_family(kind, 16, 1, &FamilyParams { w: 3.0 }, seed)[0];
            let base = f.hash(&v);
            prop_assert_eq!(f.hash(&v), base, "{:?} must be deterministic", kind);
            let alts = f.alternatives(&v, 6);
            for w in alts.windows(2) {
                prop_assert!(w[0].score <= w[1].score + 1e-12, "{:?} unsorted", kind);
            }
            let mut syms: Vec<u64> = alts.iter().map(|a| a.symbol).collect();
            prop_assert!(!syms.contains(&base), "{:?} emitted the base symbol", kind);
            let before = syms.len();
            syms.sort_unstable();
            syms.dedup();
            prop_assert_eq!(syms.len(), before, "{:?} repeated an alternative", kind);
        }
    }

    /// Scaling a vector never changes its cross-polytope hash (the family
    /// is a function of direction only) — the invariant that lets the
    /// angular pipeline skip re-normalization inside the hasher.
    #[test]
    fn cross_polytope_is_scale_invariant(
        v in vector(12),
        scale in 0.1f32..50.0,
        seed in 0u64..500,
    ) {
        prop_assume!(v.iter().any(|&x| x.abs() > 1e-3));
        for kind in [FamilyKind::CrossPolytope, FamilyKind::CrossPolytopeFast] {
            let f = &sample_family(kind, 12, 1, &FamilyParams::default(), seed)[0];
            let scaled: Vec<f32> = v.iter().map(|x| x * scale).collect();
            prop_assert_eq!(f.hash(&v), f.hash(&scaled), "{:?}", kind);
        }
    }

    /// Random projection: translating a vector along the projection's null
    /// directions aside, adding w to the projection moves the bucket by
    /// exactly one — checked through the public API by scaling the offset.
    #[test]
    fn random_projection_buckets_are_monotone_in_projection(
        v in vector(8),
        seed in 0u64..500,
    ) {
        let f = lsh::RandomProjection::sample(8, 2.0, seed);
        let b = f.bucket(&v);
        let p = f.projection(&v);
        // The bucket is exactly floor(projection).
        prop_assert_eq!(b, p.floor() as i64);
    }
}
