//! Synthetic surrogates for the paper's five real-life datasets.
//!
//! The paper evaluates on Msong (420-d audio), Sift (128-d image), Gist
//! (960-d image), GloVe (100-d text embeddings), and Deep (256-d CNN codes),
//! each with about 10^6 vectors (Table 2). The raw files are not shipped
//! here, so [`SynthSpec`] generates clustered Gaussian-mixture workloads with
//! the same dimensionality and a controllable cluster structure. LSH methods
//! only see the pairwise-distance distribution, so a mixture whose
//! within-cluster spread is well below the between-cluster spread reproduces
//! the qualitative behaviour (meaningful nearest neighbours, non-trivial
//! recall/time trade-off) that the real datasets exhibit. Real files can
//! still be used through [`crate::io::read_fvecs`].
//!
//! Generation is fully deterministic given a seed and parallelized across
//! clusters with `crossbeam`.

use crate::store::Dataset;
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};

/// Declarative description of a synthetic dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Dataset name, mirrored from the paper's Table 2.
    pub name: String,
    /// Number of vectors to generate.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Number of mixture components. More clusters = more local structure.
    pub clusters: usize,
    /// Standard deviation of cluster centers (between-cluster scale).
    pub center_sigma: f64,
    /// Standard deviation of points around their center (within-cluster
    /// scale). The ratio `center_sigma / point_sigma` controls how "easy"
    /// the NN problem is; the defaults below give recall curves with the
    /// same qualitative shape as the paper's figures.
    pub point_sigma: f64,
    /// Optional heavy-tail exponent: with probability 1/`heavy_tail_inv`
    /// a point's offset is scaled by 3x, roughening the distance histogram
    /// the way real feature data (e.g. GloVe) is roughened. 0 disables.
    pub heavy_tail_inv: u32,
}

impl SynthSpec {
    /// Generic spec with sensible cluster structure.
    pub fn new(name: impl Into<String>, n: usize, dim: usize) -> Self {
        Self {
            name: name.into(),
            n,
            dim,
            clusters: 64,
            center_sigma: 10.0,
            point_sigma: 1.0,
            heavy_tail_inv: 0,
        }
    }

    /// 420-d surrogate for Msong (audio features). The `center_sigma` /
    /// `point_sigma` ratios of the five surrogates are tuned so the sampled
    /// relative contrast (mean pairwise distance over mean NN distance)
    /// lands in the 1.5–3.5 range real ANN benchmarks exhibit — the regime
    /// where the recall/time trade-off is actually exercised.
    pub fn msong_like() -> Self {
        Self { heavy_tail_inv: 8, center_sigma: 2.5, ..Self::new("Msong", 20_000, 420) }
    }

    /// 128-d surrogate for Sift (image SIFT descriptors).
    pub fn sift_like() -> Self {
        Self { clusters: 128, center_sigma: 2.2, ..Self::new("Sift", 20_000, 128) }
    }

    /// 960-d surrogate for Gist (global image descriptors). The paper's
    /// Table 2 lists 900/960 inconsistently; we follow the official TEXMEX
    /// dimensionality of 960.
    pub fn gist_like() -> Self {
        Self { clusters: 32, center_sigma: 3.0, ..Self::new("Gist", 20_000, 960) }
    }

    /// 100-d surrogate for GloVe (text embeddings; heavy-tailed like word
    /// frequency data).
    pub fn glove_like() -> Self {
        Self { clusters: 256, heavy_tail_inv: 4, center_sigma: 1.8, ..Self::new("GloVe", 20_000, 100) }
    }

    /// 256-d surrogate for Deep (CNN activation codes).
    pub fn deep_like() -> Self {
        Self { clusters: 96, center_sigma: 2.8, ..Self::new("Deep", 20_000, 256) }
    }

    /// All five surrogates, in the paper's Table 2 order.
    pub fn paper_suite(n: usize) -> Vec<Self> {
        vec![
            Self::msong_like().with_n(n),
            Self::sift_like().with_n(n),
            Self::gist_like().with_n(n),
            Self::glove_like().with_n(n),
            Self::deep_like().with_n(n),
        ]
    }

    /// Overrides the vector count.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Overrides the dimensionality.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Overrides the cluster count.
    pub fn with_clusters(mut self, c: usize) -> Self {
        self.clusters = c.max(1);
        self
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `dim == 0`.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.n > 0 && self.dim > 0, "empty spec");
        let clusters = self.clusters.max(1).min(self.n);

        // Cluster centers from a master RNG.
        let mut master = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut centers = vec![0.0f32; clusters * self.dim];
        for c in centers.iter_mut() {
            let g: f64 = StandardNormal.sample(&mut master);
            *c = (g * self.center_sigma) as f32;
        }

        let mut data = vec![0.0f32; self.n * self.dim];
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(16);
        let chunk = self.n.div_ceil(threads).max(1);

        crossbeam::scope(|scope| {
            for (t, slab) in data.chunks_mut(chunk * self.dim).enumerate() {
                let centers = &centers;
                let spec = self;
                scope.spawn(move |_| {
                    let mut rng =
                        rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(1 + t as u64));
                    let start = t * chunk;
                    for (r, row) in slab.chunks_exact_mut(spec.dim).enumerate() {
                        let i = start + r;
                        // Assign clusters round-robin + jitter: keeps sizes
                        // balanced and deterministic regardless of threading.
                        let n_clusters = (centers.len() / spec.dim).max(1);
                        let cl = (i + (i.wrapping_mul(2_654_435_761)) % 7) % n_clusters;
                        let center = &centers[cl * spec.dim..(cl + 1) * spec.dim];
                        let scale = if spec.heavy_tail_inv > 0
                            && rng.gen_ratio(1, spec.heavy_tail_inv)
                        {
                            3.0 * spec.point_sigma
                        } else {
                            spec.point_sigma
                        };
                        for (x, c) in row.iter_mut().zip(center) {
                            let g: f64 = StandardNormal.sample(&mut rng);
                            *x = c + (g * scale) as f32;
                        }
                    }
                });
            }
        })
        .expect("generator thread panicked");

        Dataset::from_flat(self.name.clone(), self.dim, data)
    }

    /// Generates a fresh query set from the same mixture (held-out draws, the
    /// analogue of the paper's test sets) rather than sampling database rows.
    ///
    /// **Pass the same `seed` used for [`SynthSpec::generate`]**: the mixture
    /// centers are derived from `seed`, and the query points from a distinct
    /// internal stream — a different seed would draw queries from a
    /// *different* mixture, making every query far from all data.
    pub fn generate_queries(&self, q: usize, seed: u64) -> Dataset {
        let spec = Self { name: format!("{}-queries", self.name), n: q, ..self.clone() };
        // Same mixture (same center seed), different point seed: the centers
        // are derived from `seed ^ const` inside generate(), so we must keep
        // the same master seed but perturb the per-thread point seeds. We do
        // that by generating q + n and slicing — wasteful for huge n, so
        // instead re-derive with identical centers:
        let mut master = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let clusters = self.clusters.max(1).min(self.n);
        let mut centers = vec![0.0f32; clusters * self.dim];
        for c in centers.iter_mut() {
            let g: f64 = StandardNormal.sample(&mut master);
            *c = (g * self.center_sigma) as f32;
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x51ed_270b_a9b2_55cb);
        let mut data = vec![0.0f32; q * self.dim];
        for (i, row) in data.chunks_exact_mut(self.dim).enumerate() {
            let cl = i % clusters;
            let center = &centers[cl * self.dim..(cl + 1) * self.dim];
            for (x, c) in row.iter_mut().zip(center) {
                let g: f64 = StandardNormal.sample(&mut rng);
                *x = c + (g * self.point_sigma) as f32;
            }
        }
        Dataset::from_flat(spec.name, self.dim, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::euclidean;

    #[test]
    fn shapes_match_spec() {
        let d = SynthSpec::sift_like().with_n(257).generate(1);
        assert_eq!(d.len(), 257);
        assert_eq!(d.dim(), 128);
        assert_eq!(d.name(), "Sift");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SynthSpec::glove_like().with_n(300).generate(11);
        let b = SynthSpec::glove_like().with_n(300).generate(11);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthSpec::glove_like().with_n(100).generate(1);
        let b = SynthSpec::glove_like().with_n(100).generate(2);
        assert_ne!(a, b);
    }

    #[test]
    fn clustered_structure_exists() {
        // Points must not be one Gaussian blob: nearest-neighbor distance
        // should be well below the average pairwise distance.
        let d = SynthSpec::new("t", 400, 16).with_clusters(8).generate(3);
        let mut nn = 0.0;
        let mut avg = 0.0;
        let mut cnt = 0.0;
        for i in 0..50 {
            let mut best = f64::INFINITY;
            for j in 0..d.len() {
                if i == j {
                    continue;
                }
                let dist = euclidean(d.get(i), d.get(j));
                best = best.min(dist);
                avg += dist;
                cnt += 1.0;
            }
            nn += best;
        }
        nn /= 50.0;
        avg /= cnt;
        assert!(nn < avg * 0.75, "nn {nn} should be well below avg {avg}");
    }

    #[test]
    fn paper_suite_dimensions() {
        let suite = SynthSpec::paper_suite(100);
        let dims: Vec<usize> = suite.iter().map(|s| s.dim).collect();
        assert_eq!(dims, vec![420, 128, 960, 100, 256]);
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["Msong", "Sift", "Gist", "GloVe", "Deep"]);
    }

    #[test]
    fn held_out_queries_have_right_shape() {
        let spec = SynthSpec::deep_like().with_n(100);
        let q = spec.generate_queries(7, 5);
        assert_eq!(q.len(), 7);
        assert_eq!(q.dim(), 256);
    }

    #[test]
    #[should_panic(expected = "empty spec")]
    fn zero_n_panics() {
        SynthSpec::new("x", 0, 4).generate(1);
    }
}
