//! Distance metrics of the paper's §2.1.
//!
//! The paper's framework is metric-agnostic ("LCCS-LSH is orthogonal to the
//! LSH family and can handle various kinds of distance metrics"): it supports
//! any metric that admits an LSH family. The evaluation focuses on Euclidean
//! and Angular distance; Hamming and Jaccard are provided because the paper
//! explicitly discusses their families (bit sampling, MinHash).

use serde::{Deserialize, Serialize};

/// A distance metric between two vectors in `R^d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// `||o - q||_2` — the metric of the random-projection family (Eq. 1).
    Euclidean,
    /// `θ(o, q) = arccos(o·q / (||o|| ||q||))` — the metric of the
    /// cross-polytope family (Eq. 3). Monotone in Euclidean distance on the
    /// unit sphere, which is how the paper (and FALCONN) treat it.
    Angular,
    /// Number of differing coordinates after thresholding at 0.5 (vectors are
    /// interpreted as 0/1 indicators). Matches the bit-sampling family of
    /// Indyk–Motwani.
    Hamming,
    /// `1 - |A ∩ B| / |A ∪ B|` over the supports (non-zero coordinates) of
    /// the two vectors. Matches the MinHash family.
    Jaccard,
}

impl Metric {
    /// Distance between two equal-length slices.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
        self.distance_unchecked(a, b)
    }

    /// Like [`Metric::distance`], but validates the lengths only in debug
    /// builds. This is the variant for inner scan loops (exact k-NN, the
    /// verification phase) whose callers have already checked the query
    /// dimension once per query — a release-mode `assert!` per candidate
    /// is pure overhead there.
    #[inline]
    pub fn distance_unchecked(self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
        match self {
            Metric::Euclidean => euclidean(a, b),
            Metric::Angular => angular(a, b),
            Metric::Hamming => hamming(a, b),
            Metric::Jaccard => jaccard(a, b),
        }
    }

    /// A monotone surrogate of [`Metric::distance`] that is cheaper to
    /// compute and preserves the ordering of candidates. Used by the
    /// verification phase, where only ranks and ratios matter after a final
    /// exact pass.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn surrogate(self, a: &[f32], b: &[f32]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
        self.surrogate_unchecked(a, b)
    }

    /// [`Metric::surrogate`] with the length check demoted to a
    /// `debug_assert!` — see [`Metric::distance_unchecked`].
    #[inline]
    pub fn surrogate_unchecked(self, a: &[f32], b: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
        match self {
            Metric::Euclidean => squared_euclidean(a, b),
            _ => self.distance_unchecked(a, b),
        }
    }

    /// Converts a surrogate value back to the true distance.
    #[inline]
    pub fn from_surrogate(self, s: f64) -> f64 {
        match self {
            Metric::Euclidean => s.sqrt(),
            _ => s,
        }
    }

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Euclidean => "Euclidean",
            Metric::Angular => "Angular",
            Metric::Hamming => "Hamming",
            Metric::Jaccard => "Jaccard",
        }
    }

    /// Whether the metric only depends on vector directions. Angular data is
    /// normalized to the unit sphere at load time.
    pub fn is_angular(self) -> bool {
        matches!(self, Metric::Angular)
    }

    /// Parses a metric from its name, case-insensitively, accepting the
    /// common aliases (`l2`, `cosine`). Used by config strings and the
    /// serving layer's BUILD command.
    pub fn from_name(name: &str) -> Option<Metric> {
        match name.to_ascii_lowercase().as_str() {
            "euclidean" | "l2" => Some(Metric::Euclidean),
            "angular" | "cosine" => Some(Metric::Angular),
            "hamming" => Some(Metric::Hamming),
            "jaccard" => Some(Metric::Jaccard),
            _ => None,
        }
    }
}

/// `||a - b||_2^2`, the inner loop of Euclidean verification.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
    // f32 accumulation in 4 lanes keeps the loop auto-vectorizable; the
    // accumulator is widened to f64 at the end, which is accurate enough for
    // ranking (the paper's verification phase only ranks candidates).
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        for (lane, slot) in acc.iter_mut().enumerate() {
            let j = i * 4 + lane;
            let d = a[j] - b[j];
            *slot += d * d;
        }
    }
    let mut sum = (acc[0] + acc[1]) as f64 + (acc[2] + acc[3]) as f64;
    for j in chunks * 4..a.len() {
        let d = (a[j] - b[j]) as f64;
        sum += d * d;
    }
    sum
}

/// `||a - b||_2`.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Inner product `a · b`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        for (lane, slot) in acc.iter_mut().enumerate() {
            let j = i * 4 + lane;
            *slot += a[j] * b[j];
        }
    }
    let mut sum = (acc[0] + acc[1]) as f64 + (acc[2] + acc[3]) as f64;
    for j in chunks * 4..a.len() {
        sum += (a[j] * b[j]) as f64;
    }
    sum
}

/// `||a||_2`.
#[inline]
pub fn norm(a: &[f32]) -> f64 {
    dot(a, a).sqrt()
}

/// Angular distance `θ(a, b) ∈ [0, π]`.
#[inline]
pub fn angular(a: &[f32], b: &[f32]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        // Zero vectors have no direction; by convention they are maximally
        // far from everything (the synthetic generators never emit them, but
        // fvecs files in the wild do contain zero rows).
        return std::f64::consts::PI;
    }
    let cos = (dot(a, b) / (na * nb)).clamp(-1.0, 1.0);
    cos.acos()
}

/// Hamming distance over 0/1-thresholded coordinates.
#[inline]
pub fn hamming(a: &[f32], b: &[f32]) -> f64 {
    let mut diff = 0u32;
    for (x, y) in a.iter().zip(b) {
        diff += u32::from((*x >= 0.5) != (*y >= 0.5));
    }
    f64::from(diff)
}

/// Jaccard distance over supports.
#[inline]
pub fn jaccard(a: &[f32], b: &[f32]) -> f64 {
    let mut inter = 0u32;
    let mut union = 0u32;
    for (x, y) in a.iter().zip(b) {
        let xa = *x != 0.0;
        let ya = *y != 0.0;
        inter += u32::from(xa && ya);
        union += u32::from(xa || ya);
    }
    if union == 0 {
        0.0
    } else {
        1.0 - f64::from(inter) / f64::from(union)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_definition() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.0, 2.0, 5.0, 4.0, 3.0];
        // diffs: 1, 0, -2, 0, 2 -> sum sq = 9
        assert!((euclidean(&a, &b) - 3.0).abs() < 1e-9);
        assert!((squared_euclidean(&a, &b) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn euclidean_zero_on_identical() {
        let a = [0.25f32; 37];
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn angular_orthogonal_is_half_pi() {
        let a = [1.0, 0.0];
        let b = [0.0, 5.0];
        assert!((angular(&a, &b) - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn angular_same_direction_is_zero() {
        let a = [1.0, 2.0, -1.0];
        let b = [2.0, 4.0, -2.0];
        assert!(angular(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn angular_opposite_is_pi() {
        let a = [1.0, 0.5];
        let b = [-2.0, -1.0];
        assert!((angular(&a, &b) - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn angular_zero_vector_is_max() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        assert_eq!(angular(&a, &b), std::f64::consts::PI);
    }

    #[test]
    fn hamming_counts_threshold_flips() {
        let a = [0.0, 1.0, 1.0, 0.0];
        let b = [1.0, 1.0, 0.0, 0.2];
        assert_eq!(hamming(&a, &b), 2.0);
    }

    #[test]
    fn jaccard_on_supports() {
        let a = [1.0, 1.0, 0.0, 1.0];
        let b = [1.0, 0.0, 1.0, 1.0];
        // inter = {0, 3} -> 2; union = {0,1,2,3} -> 4
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_empty_supports_are_identical() {
        let a = [0.0; 8];
        assert_eq!(jaccard(&a, &a), 0.0);
    }

    #[test]
    fn surrogate_roundtrip_euclidean() {
        let a = [3.0, 0.0];
        let b = [0.0, 4.0];
        let m = Metric::Euclidean;
        let s = m.surrogate(&a, &b);
        assert!((m.from_surrogate(s) - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        Metric::Euclidean.distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn surrogate_dimension_mismatch_panics() {
        Metric::Euclidean.surrogate(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn unchecked_variants_agree_with_checked() {
        let a = [1.0f32, -2.0, 0.0, 4.5, 1.0];
        let b = [0.5f32, 2.0, 1.0, 0.0, 1.0];
        for m in [Metric::Euclidean, Metric::Angular, Metric::Hamming, Metric::Jaccard] {
            assert_eq!(m.distance(&a, &b).to_bits(), m.distance_unchecked(&a, &b).to_bits());
            assert_eq!(m.surrogate(&a, &b).to_bits(), m.surrogate_unchecked(&a, &b).to_bits());
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dimension mismatch")]
    fn unchecked_still_checks_in_debug_builds() {
        Metric::Euclidean.surrogate_unchecked(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn from_name_round_trips_and_accepts_aliases() {
        for m in [Metric::Euclidean, Metric::Angular, Metric::Hamming, Metric::Jaccard] {
            assert_eq!(Metric::from_name(m.name()), Some(m));
        }
        assert_eq!(Metric::from_name("l2"), Some(Metric::Euclidean));
        assert_eq!(Metric::from_name("COSINE"), Some(Metric::Angular));
        assert_eq!(Metric::from_name("manhattan"), None);
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::Euclidean.name(), "Euclidean");
        assert_eq!(Metric::Angular.name(), "Angular");
        assert!(Metric::Angular.is_angular());
        assert!(!Metric::Hamming.is_angular());
    }

    #[test]
    fn dot_and_norm() {
        let a = [1.0, 2.0, 2.0];
        assert!((norm(&a) - 3.0).abs() < 1e-9);
        let b = [2.0, 0.0, 1.0];
        assert!((dot(&a, &b) - 4.0).abs() < 1e-9);
    }
}
