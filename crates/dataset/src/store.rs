//! Row-major vector store.
//!
//! All n×d datasets in the reproduction live in a single contiguous
//! allocation so that brute-force verification and hashing scan memory
//! linearly — matching how the original C++ code lays out its data.
//!
//! The flat buffer has two backings: plain owned memory (the default),
//! or a shared [`mm::FloatBlock`] — an `Arc` over either an mmap'd
//! snapshot region or a decode buffer — which is how the serving layer
//! restores snapshots without copying the vector block. A dataset also
//! lazily caches an [`Sq8`] code table (per-dimension scalar
//! quantization) that the scan loops use as a sound skip-bound
//! pre-filter; the cache never changes answers, so equality and
//! cloning ignore it.

use crate::metric::{self, Metric};
use crate::sq8::Sq8;
use rand::seq::index::sample;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// Where a dataset's flat buffer physically lives. Surfaced through
/// the serving layer so operators can see which path answers queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// A plain owned `Vec<f32>`.
    Owned,
    /// A shared decode buffer (zero vector-block copy, but the file
    /// bytes were read into memory).
    SharedBytes,
    /// A shared mmap'd file region (zero-copy; pages fault in lazily).
    Mapped,
}

impl StorageKind {
    /// Stable lower-case label (`owned` / `shared` / `mapped`) used in
    /// daemon logs and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            StorageKind::Owned => "owned",
            StorageKind::SharedBytes => "shared",
            StorageKind::Mapped => "mapped",
        }
    }
}

#[derive(Clone)]
enum Flat {
    Owned(Vec<f32>),
    Shared(Arc<mm::FloatBlock>),
}

impl Flat {
    fn as_slice(&self) -> &[f32] {
        match self {
            Flat::Owned(v) => v,
            Flat::Shared(b) => b.as_slice(),
        }
    }
}

/// An immutable collection of `n` vectors of dimension `d` stored row-major.
#[derive(Clone)]
pub struct Dataset {
    name: String,
    dim: usize,
    data: Flat,
    /// Lazily-built SQ8 code table. Pure cache: derived entirely from
    /// the vectors, ignored by `PartialEq`, shared by `Clone`.
    sq8: OnceLock<Arc<Sq8>>,
}

/// A borrowed view of one vector in a [`Dataset`].
pub type VectorView<'a> = &'a [f32];

impl Dataset {
    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(name: impl Into<String>, dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { name: name.into(), dim, data: Flat::Owned(data), sq8: OnceLock::new() }
    }

    /// Wraps a shared float block (an mmap'd snapshot region or a
    /// shared decode buffer) without copying it.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `block.len()` is not a multiple of `dim`.
    pub fn from_shared(name: impl Into<String>, dim: usize, block: Arc<mm::FloatBlock>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            block.len() % dim,
            0,
            "block length {} is not a multiple of dim {}",
            block.len(),
            dim
        );
        Self { name: name.into(), dim, data: Flat::Shared(block), sq8: OnceLock::new() }
    }

    /// Builds a dataset from per-vector rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent dimensions or `rows` is empty.
    pub fn from_rows(name: impl Into<String>, rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "dataset must contain at least one vector");
        let dim = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            assert_eq!(row.len(), dim, "inconsistent row dimension");
            data.extend_from_slice(row);
        }
        Self::from_flat(name, dim, data)
    }

    /// Dataset name (used in reports; mirrors the paper's Table 2 names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of vectors `n`.
    pub fn len(&self) -> usize {
        self.data.as_slice().len() / self.dim
    }

    /// True when the dataset holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.as_slice().is_empty()
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Where the flat buffer physically lives (owned / shared / mapped).
    pub fn storage(&self) -> StorageKind {
        match &self.data {
            Flat::Owned(_) => StorageKind::Owned,
            Flat::Shared(b) if b.is_mapped() => StorageKind::Mapped,
            Flat::Shared(_) => StorageKind::SharedBytes,
        }
    }

    /// Borrow vector `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> VectorView<'_> {
        &self.data.as_slice()[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterator over all vectors in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = VectorView<'_>> {
        self.data.as_slice().chunks_exact(self.dim)
    }

    /// The backing flat buffer.
    pub fn as_flat(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// In-memory size in bytes of the raw vectors (Table 2's "Data Size").
    pub fn nbytes(&self) -> usize {
        std::mem::size_of_val(self.data.as_slice())
    }

    /// The SQ8 code table for this dataset, training it on first use.
    /// Deterministic in the vectors, so every caller sees the same
    /// codes regardless of who triggered training.
    pub fn sq8(&self) -> &Arc<Sq8> {
        self.sq8.get_or_init(|| Arc::new(Sq8::train(self.as_flat(), self.dim)))
    }

    /// The SQ8 code table if one has already been trained or installed
    /// (`None` otherwise). Scan loops use this so that a path nobody
    /// primed stays pure f32.
    pub fn sq8_if_built(&self) -> Option<&Arc<Sq8>> {
        self.sq8.get()
    }

    /// Installs a pre-built SQ8 table (restored from a snapshot). A
    /// no-op if a table is already cached.
    pub fn set_sq8(&self, sq8: Arc<Sq8>) {
        let _ = self.sq8.set(sq8);
    }

    /// Normalizes every vector to unit L2 norm (Angular-distance datasets are
    /// stored on the unit sphere, as FALCONN and the paper's angular
    /// experiments do). Zero vectors are left untouched. Shared backings
    /// are copied on write; any cached SQ8 table is dropped (codes are
    /// derived from the vectors being rescaled).
    pub fn normalized(self) -> Self {
        let Dataset { name, dim, data, .. } = self;
        let mut data = match data {
            Flat::Owned(v) => v,
            Flat::Shared(b) => b.as_slice().to_vec(),
        };
        for row in data.chunks_exact_mut(dim) {
            let n = metric::norm(row);
            if n > 0.0 {
                let inv = (1.0 / n) as f32;
                for x in row {
                    *x *= inv;
                }
            }
        }
        Dataset { name, dim, data: Flat::Owned(data), sq8: OnceLock::new() }
    }

    /// Splits off `q` vectors chosen uniformly at random (without
    /// replacement) to act as the query set, mirroring the paper's protocol
    /// of "randomly select 100 objects from their test sets". The returned
    /// queries are copies; the dataset itself is unchanged (the paper's
    /// queries come from held-out test sets, so keeping them in the database
    /// is harmless at these scales and keeps ids stable).
    ///
    /// # Panics
    /// Panics if `q > len()`.
    pub fn sample_queries(&self, q: usize, seed: u64) -> Dataset {
        assert!(q <= self.len(), "cannot sample {} queries from {} vectors", q, self.len());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let idx = sample(&mut rng, self.len(), q);
        let mut data = Vec::with_capacity(q * self.dim);
        for i in idx.iter() {
            data.extend_from_slice(self.get(i));
        }
        Dataset::from_flat(format!("{}-queries", self.name), self.dim, data)
    }

    /// Returns a new dataset containing only the first `n` vectors.
    ///
    /// # Panics
    /// Panics if `n > len()`.
    pub fn truncated(&self, n: usize) -> Dataset {
        assert!(n <= self.len());
        Dataset::from_flat(self.name.clone(), self.dim, self.as_flat()[..n * self.dim].to_vec())
    }

    /// Distance between stored vector `i` and an external query.
    #[inline]
    pub fn distance_to(&self, i: usize, query: &[f32], metric: Metric) -> f64 {
        metric.distance(self.get(i), query)
    }
}

impl std::ops::Index<usize> for Dataset {
    type Output = [f32];
    fn index(&self, i: usize) -> &[f32] {
        self.get(i)
    }
}

/// Equality is over the logical content (name, shape, vector bits);
/// the physical backing and the SQ8 cache are representation details.
impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.dim == other.dim && self.as_flat() == other.as_flat()
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("name", &self.name)
            .field("dim", &self.dim)
            .field("len", &self.len())
            .field("storage", &self.storage())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(
            "unit",
            &[vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 4.0]],
        )
    }

    #[test]
    fn round_trips_rows() {
        let d = small();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.get(3), &[3.0, 4.0]);
        assert_eq!(&d[1], &[1.0, 0.0]);
        assert_eq!(d.iter().count(), 4);
        assert_eq!(d.storage(), StorageKind::Owned);
    }

    #[test]
    fn nbytes_counts_floats() {
        assert_eq!(small().nbytes(), 4 * 2 * 4);
    }

    #[test]
    fn normalization_hits_unit_sphere() {
        let d = small().normalized();
        // zero vector untouched
        assert_eq!(d.get(0), &[0.0, 0.0]);
        let v = d.get(3);
        assert!((metric::norm(v) - 1.0).abs() < 1e-6);
        assert!((v[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn queries_are_members() {
        let d = small();
        let q = d.sample_queries(2, 9);
        assert_eq!(q.len(), 2);
        for qv in q.iter() {
            assert!(d.iter().any(|dv| dv == qv), "query must be drawn from data");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = small();
        assert_eq!(d.sample_queries(3, 5), d.sample_queries(3, 5));
    }

    #[test]
    fn truncation() {
        let t = small().truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1), &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_flat_buffer_panics() {
        Dataset::from_flat("x", 3, vec![1.0; 7]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row dimension")]
    fn ragged_rows_panic() {
        Dataset::from_rows("x", &[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn distance_to_query() {
        let d = small();
        assert!((d.distance_to(3, &[0.0, 0.0], Metric::Euclidean) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn shared_backing_is_equal_but_distinguishable() {
        let owned = small();
        let bytes: Vec<u8> =
            owned.as_flat().iter().flat_map(|v| v.to_bits().to_le_bytes()).collect();
        let n = owned.as_flat().len();
        match mm::FloatBlock::from_bytes(bytes, 0, n) {
            Ok(block) => {
                let shared = Dataset::from_shared("unit", 2, Arc::new(block));
                assert_eq!(shared.storage(), StorageKind::SharedBytes);
                assert_eq!(shared, owned, "equality ignores the physical backing");
                assert_eq!(shared.get(3), owned.get(3));
                // Copy-on-write: normalizing a shared dataset yields owned data.
                assert_eq!(shared.clone().normalized().storage(), StorageKind::Owned);
            }
            Err(_) => {
                // A 1-aligned decode buffer is legitimate; the serve
                // layer falls back to an owned copy in that case.
            }
        }
    }

    #[test]
    fn sq8_cache_is_lazy_shared_and_ignored_by_eq() {
        let a = small();
        let b = small();
        assert!(a.sq8_if_built().is_none(), "cache starts empty");
        let codes = Arc::clone(a.sq8());
        assert!(a.sq8_if_built().is_some());
        assert_eq!(a, b, "code cache does not affect equality");
        // Clones share the already-trained table.
        let c = a.clone();
        assert!(Arc::ptr_eq(c.sq8(), &codes));
        // Normalization invalidates the cache (vectors changed).
        assert!(a.normalized().sq8_if_built().is_none());
    }

    #[test]
    fn storage_labels_are_stable() {
        assert_eq!(StorageKind::Owned.label(), "owned");
        assert_eq!(StorageKind::SharedBytes.label(), "shared");
        assert_eq!(StorageKind::Mapped.label(), "mapped");
    }
}
