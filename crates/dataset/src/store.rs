//! Row-major vector store.
//!
//! All n×d datasets in the reproduction live in a single contiguous
//! allocation so that brute-force verification and hashing scan memory
//! linearly — matching how the original C++ code lays out its data.

use crate::metric::{self, Metric};
use rand::seq::index::sample;
use rand::SeedableRng;

/// An immutable collection of `n` vectors of dimension `d` stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    dim: usize,
    data: Vec<f32>,
}

/// A borrowed view of one vector in a [`Dataset`].
pub type VectorView<'a> = &'a [f32];

impl Dataset {
    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(name: impl Into<String>, dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { name: name.into(), dim, data }
    }

    /// Builds a dataset from per-vector rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent dimensions or `rows` is empty.
    pub fn from_rows(name: impl Into<String>, rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "dataset must contain at least one vector");
        let dim = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            assert_eq!(row.len(), dim, "inconsistent row dimension");
            data.extend_from_slice(row);
        }
        Self::from_flat(name, dim, data)
    }

    /// Dataset name (used in reports; mirrors the paper's Table 2 names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of vectors `n`.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the dataset holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow vector `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> VectorView<'_> {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterator over all vectors in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = VectorView<'_>> {
        self.data.chunks_exact(self.dim)
    }

    /// The backing flat buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// In-memory size in bytes of the raw vectors (Table 2's "Data Size").
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Normalizes every vector to unit L2 norm (Angular-distance datasets are
    /// stored on the unit sphere, as FALCONN and the paper's angular
    /// experiments do). Zero vectors are left untouched.
    pub fn normalized(mut self) -> Self {
        for row in self.data.chunks_exact_mut(self.dim) {
            let n = metric::norm(row);
            if n > 0.0 {
                let inv = (1.0 / n) as f32;
                for x in row {
                    *x *= inv;
                }
            }
        }
        self
    }

    /// Splits off `q` vectors chosen uniformly at random (without
    /// replacement) to act as the query set, mirroring the paper's protocol
    /// of "randomly select 100 objects from their test sets". The returned
    /// queries are copies; the dataset itself is unchanged (the paper's
    /// queries come from held-out test sets, so keeping them in the database
    /// is harmless at these scales and keeps ids stable).
    ///
    /// # Panics
    /// Panics if `q > len()`.
    pub fn sample_queries(&self, q: usize, seed: u64) -> Dataset {
        assert!(q <= self.len(), "cannot sample {} queries from {} vectors", q, self.len());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let idx = sample(&mut rng, self.len(), q);
        let mut data = Vec::with_capacity(q * self.dim);
        for i in idx.iter() {
            data.extend_from_slice(self.get(i));
        }
        Dataset::from_flat(format!("{}-queries", self.name), self.dim, data)
    }

    /// Returns a new dataset containing only the first `n` vectors.
    ///
    /// # Panics
    /// Panics if `n > len()`.
    pub fn truncated(&self, n: usize) -> Dataset {
        assert!(n <= self.len());
        Dataset::from_flat(self.name.clone(), self.dim, self.data[..n * self.dim].to_vec())
    }

    /// Distance between stored vector `i` and an external query.
    #[inline]
    pub fn distance_to(&self, i: usize, query: &[f32], metric: Metric) -> f64 {
        metric.distance(self.get(i), query)
    }
}

impl std::ops::Index<usize> for Dataset {
    type Output = [f32];
    fn index(&self, i: usize) -> &[f32] {
        self.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(
            "unit",
            &[vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 4.0]],
        )
    }

    #[test]
    fn round_trips_rows() {
        let d = small();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.get(3), &[3.0, 4.0]);
        assert_eq!(&d[1], &[1.0, 0.0]);
        assert_eq!(d.iter().count(), 4);
    }

    #[test]
    fn nbytes_counts_floats() {
        assert_eq!(small().nbytes(), 4 * 2 * 4);
    }

    #[test]
    fn normalization_hits_unit_sphere() {
        let d = small().normalized();
        // zero vector untouched
        assert_eq!(d.get(0), &[0.0, 0.0]);
        let v = d.get(3);
        assert!((metric::norm(v) - 1.0).abs() < 1e-6);
        assert!((v[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn queries_are_members() {
        let d = small();
        let q = d.sample_queries(2, 9);
        assert_eq!(q.len(), 2);
        for qv in q.iter() {
            assert!(d.iter().any(|dv| dv == qv), "query must be drawn from data");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = small();
        assert_eq!(d.sample_queries(3, 5), d.sample_queries(3, 5));
    }

    #[test]
    fn truncation() {
        let t = small().truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1), &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_flat_buffer_panics() {
        Dataset::from_flat("x", 3, vec![1.0; 7]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row dimension")]
    fn ragged_rows_panic() {
        Dataset::from_rows("x", &[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn distance_to_query() {
        let d = small();
        assert!((d.distance_to(3, &[0.0, 0.0], Metric::Euclidean) - 5.0).abs() < 1e-9);
    }
}
