//! Dataset statistics — the columns of the paper's Table 2 plus distance
//! distribution summaries used to sanity-check the synthetic surrogates.

use crate::metric::Metric;
use crate::store::Dataset;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Table 2 row: `#Objects`, `#Queries`, `d`, `Data Size`, `Type`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRow {
    /// Dataset name.
    pub name: String,
    /// Number of database objects.
    pub n_objects: usize,
    /// Number of queries.
    pub n_queries: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Raw data size in bytes.
    pub data_bytes: usize,
    /// Source data type (Audio/Image/Text/Deep), carried through from the
    /// surrogate spec.
    pub data_type: String,
}

impl TableRow {
    /// Builds the row from a data/query pair.
    pub fn new(data: &Dataset, queries: &Dataset, data_type: &str) -> Self {
        Self {
            name: data.name().to_string(),
            n_objects: data.len(),
            n_queries: queries.len(),
            dim: data.dim(),
            data_bytes: data.nbytes(),
            data_type: data_type.to_string(),
        }
    }

    /// Human-readable size, like the paper's "488.3 MB".
    pub fn pretty_size(&self) -> String {
        let b = self.data_bytes as f64;
        if b >= 1e9 {
            format!("{:.1} GB", b / 1e9)
        } else if b >= 1e6 {
            format!("{:.1} MB", b / 1e6)
        } else {
            format!("{:.1} KB", b / 1e3)
        }
    }
}

/// Summary of the pairwise distance distribution from a random sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceProfile {
    /// Metric profiled.
    pub metric: Metric,
    /// Sampled mean pairwise distance.
    pub mean: f64,
    /// Sampled standard deviation.
    pub std: f64,
    /// Minimum sampled distance (excluding identical pairs).
    pub min: f64,
    /// Maximum sampled distance.
    pub max: f64,
    /// Relative contrast: mean / mean-nearest-of-sample — a standard
    /// difficulty indicator for ANN workloads (higher = easier).
    pub relative_contrast: f64,
}

impl DistanceProfile {
    /// Profiles `pairs` random pairs and `probes` nearest-of-sample probes.
    pub fn sample(data: &Dataset, metric: Metric, pairs: usize, seed: u64) -> Self {
        assert!(data.len() >= 2, "need at least two vectors");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut dists = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let i = rng.gen_range(0..data.len());
            let mut j = rng.gen_range(0..data.len());
            while j == i {
                j = rng.gen_range(0..data.len());
            }
            dists.push(metric.distance(data.get(i), data.get(j)));
        }
        let mean = dists.iter().sum::<f64>() / dists.len() as f64;
        let var =
            dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dists.len() as f64;
        let min = dists.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = dists.iter().cloned().fold(0.0f64, f64::max);

        // Nearest-of-sample estimate over a handful of probe points.
        let probes = 16.min(data.len());
        let sample_sz = 256.min(data.len());
        let mut nn_sum = 0.0;
        for p in 0..probes {
            let pi = rng.gen_range(0..data.len());
            let mut best = f64::INFINITY;
            for _ in 0..sample_sz {
                let j = rng.gen_range(0..data.len());
                if j != pi {
                    best = best.min(metric.distance(data.get(pi), data.get(j)));
                }
            }
            nn_sum += best;
            let _ = p;
        }
        let nn_mean = nn_sum / probes as f64;
        let relative_contrast = if nn_mean > 0.0 { mean / nn_mean } else { f64::INFINITY };

        Self { metric, mean, std: var.sqrt(), min, max, relative_contrast }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    #[test]
    fn table_row_matches_dataset() {
        let d = SynthSpec::sift_like().with_n(50).generate(3);
        let q = d.sample_queries(5, 1);
        let row = TableRow::new(&d, &q, "Image");
        assert_eq!(row.n_objects, 50);
        assert_eq!(row.n_queries, 5);
        assert_eq!(row.dim, 128);
        assert_eq!(row.data_bytes, 50 * 128 * 4);
        assert_eq!(row.data_type, "Image");
    }

    #[test]
    fn pretty_sizes() {
        let mut row = TableRow {
            name: "x".into(),
            n_objects: 0,
            n_queries: 0,
            dim: 0,
            data_bytes: 1_600_000_000,
            data_type: "Audio".into(),
        };
        assert_eq!(row.pretty_size(), "1.6 GB");
        row.data_bytes = 488_300_000;
        assert_eq!(row.pretty_size(), "488.3 MB");
        row.data_bytes = 12_000;
        assert_eq!(row.pretty_size(), "12.0 KB");
    }

    #[test]
    fn profile_is_sane_on_clustered_data() {
        let d = SynthSpec::new("t", 400, 24).with_clusters(8).generate(5);
        let p = DistanceProfile::sample(&d, Metric::Euclidean, 500, 7);
        assert!(p.mean > 0.0);
        assert!(p.min >= 0.0 && p.min <= p.mean);
        assert!(p.max >= p.mean);
        assert!(p.std > 0.0);
        // Clustered data must show contrast > 1 (NN is closer than average).
        assert!(p.relative_contrast > 1.0, "contrast = {}", p.relative_contrast);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn profile_needs_two_vectors() {
        let d = Dataset::from_rows("one", &[vec![1.0]]);
        DistanceProfile::sample(&d, Metric::Euclidean, 10, 1);
    }
}
