//! Vector dataset substrate for the LCCS-LSH (SIGMOD 2020) reproduction.
//!
//! The paper evaluates c-k-ANNS over five real-life datasets (Msong, Sift,
//! Gist, GloVe, Deep) under Euclidean and Angular distance. This crate
//! provides everything the evaluation needs below the hashing layer:
//!
//! * [`metric`] — the distance metrics of §2.1 (Euclidean, Angular) plus
//!   Hamming and Jaccard, which the paper cites as further LSH-able metrics.
//! * [`store`] — a cache-friendly row-major container for n×d float vectors.
//! * [`synth`] — synthetic surrogates for the paper's five datasets with the
//!   same dimensionality and clustered structure (see DESIGN.md §4).
//! * [`exact`] — parallel brute-force exact k-NN, the recall/ratio oracle.
//! * [`io`] — TEXMEX `fvecs`/`ivecs`/`bvecs` readers and writers so that the
//!   real datasets drop in when available.
//! * [`stats`] — the dataset statistics reported in the paper's Table 2.
//!
//! # Example
//!
//! ```
//! use dataset::{synth::SynthSpec, metric::Metric, exact::ExactKnn};
//!
//! let data = SynthSpec::sift_like().with_n(500).generate(7);
//! let queries = data.sample_queries(10, 42);
//! let gt = ExactKnn::compute(&data, &queries, 5, Metric::Euclidean);
//! assert_eq!(gt.k(), 5);
//! ```
//!
//! Where this substrate sits in the workspace is mapped in
//! `docs/architecture.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod io;
pub mod metric;
pub mod sq8;
pub mod stats;
pub mod store;
pub mod synth;

pub use exact::{ExactKnn, GroundTruth};
pub use metric::Metric;
pub use sq8::{Sq8, Sq8Pruner};
pub use store::{Dataset, StorageKind, VectorView};
pub use synth::SynthSpec;
