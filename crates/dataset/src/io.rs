//! TEXMEX vector-file IO (`.fvecs`, `.ivecs`, `.bvecs`).
//!
//! The paper's Sift and Gist datasets ship in this format: every vector is a
//! little-endian `i32` dimension header followed by `d` payload elements
//! (`f32`, `i32`, or `u8`). These readers let the real datasets drop into the
//! reproduction when available; the writers let the harness export its
//! synthetic surrogates for inspection by other tools.
//!
//! All readers validate structure (consistent dimensions, no trailing bytes,
//! finite floats) and return [`IoError`] rather than panicking, because files
//! in the wild are routinely truncated.

use crate::store::Dataset;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised by the vector-file readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem or stream error.
    Io(std::io::Error),
    /// Structural problem in the payload (message explains what).
    Malformed(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Malformed(m) => write!(f, "malformed vector file: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, IoError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false); // clean EOF at a record boundary
            }
            return Err(IoError::Malformed(format!(
                "truncated record: expected {} more bytes",
                buf.len() - filled
            )));
        }
        filled += n;
    }
    Ok(true)
}

/// Upper bound on a record's declared dimensionality. The real TEXMEX
/// sets top out at 960 (Gist); a header beyond this is a corrupt or
/// hostile file, and honoring it would allocate the declared size
/// *before* the payload read can fail.
pub const MAX_DIM: usize = 1 << 16;

fn read_dim_header(r: &mut impl Read) -> Result<Option<usize>, IoError> {
    let mut hdr = [0u8; 4];
    if !read_exact_or_eof(r, &mut hdr)? {
        return Ok(None);
    }
    let d = i32::from_le_bytes(hdr);
    if d <= 0 {
        return Err(IoError::Malformed(format!("non-positive dimension header {d}")));
    }
    if d as usize > MAX_DIM {
        return Err(IoError::Malformed(format!(
            "dimension header {d} exceeds the {MAX_DIM} sanity cap"
        )));
    }
    Ok(Some(d as usize))
}

/// Reads an `.fvecs` stream into a [`Dataset`]. `limit` caps the number of
/// vectors read (`None` reads all), which is how the harness subsamples the
/// full 10^6-vector files.
pub fn read_fvecs_from(
    mut r: impl Read,
    name: &str,
    limit: Option<usize>,
) -> Result<Dataset, IoError> {
    let mut data: Vec<f32> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut count = 0usize;
    while limit.is_none_or(|l| count < l) {
        let Some(d) = read_dim_header(&mut r)? else { break };
        match dim {
            None => dim = Some(d),
            Some(d0) if d0 != d => {
                return Err(IoError::Malformed(format!(
                    "inconsistent dimensions: {d0} then {d} at record {count}"
                )))
            }
            _ => {}
        }
        let mut payload = vec![0u8; d * 4];
        if !read_exact_or_eof(&mut r, &mut payload)? {
            return Err(IoError::Malformed("truncated payload".into()));
        }
        for c in payload.chunks_exact(4) {
            let v = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            if !v.is_finite() {
                return Err(IoError::Malformed(format!(
                    "non-finite value {v} at record {count}"
                )));
            }
            data.push(v);
        }
        count += 1;
    }
    let dim = dim.ok_or_else(|| IoError::Malformed("empty file".into()))?;
    Ok(Dataset::from_flat(name, dim, data))
}

/// Reads an `.fvecs` file from disk. See [`read_fvecs_from`].
pub fn read_fvecs(path: impl AsRef<Path>, limit: Option<usize>) -> Result<Dataset, IoError> {
    let name = path
        .as_ref()
        .file_stem()
        .map_or_else(|| "fvecs".to_string(), |s| s.to_string_lossy().into_owned());
    read_fvecs_from(BufReader::new(File::open(path.as_ref())?), &name, limit)
}

/// Reads a `.bvecs` stream (u8 payload, used by the billion-scale Sift sets).
pub fn read_bvecs_from(
    mut r: impl Read,
    name: &str,
    limit: Option<usize>,
) -> Result<Dataset, IoError> {
    let mut data: Vec<f32> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut count = 0usize;
    while limit.is_none_or(|l| count < l) {
        let Some(d) = read_dim_header(&mut r)? else { break };
        match dim {
            None => dim = Some(d),
            Some(d0) if d0 != d => {
                return Err(IoError::Malformed(format!(
                    "inconsistent dimensions: {d0} then {d} at record {count}"
                )))
            }
            _ => {}
        }
        let mut payload = vec![0u8; d];
        if !read_exact_or_eof(&mut r, &mut payload)? {
            return Err(IoError::Malformed("truncated payload".into()));
        }
        data.extend(payload.iter().map(|&b| f32::from(b)));
        count += 1;
    }
    let dim = dim.ok_or_else(|| IoError::Malformed("empty file".into()))?;
    Ok(Dataset::from_flat(name, dim, data))
}

/// Reads an `.ivecs` stream (i32 payload — TEXMEX ground-truth id lists).
pub fn read_ivecs_from(mut r: impl Read, limit: Option<usize>) -> Result<Vec<Vec<i32>>, IoError> {
    let mut out = Vec::new();
    while limit.is_none_or(|l| out.len() < l) {
        let Some(d) = read_dim_header(&mut r)? else { break };
        let mut payload = vec![0u8; d * 4];
        if !read_exact_or_eof(&mut r, &mut payload)? {
            return Err(IoError::Malformed("truncated payload".into()));
        }
        out.push(
            payload
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        );
    }
    Ok(out)
}

/// Writes a [`Dataset`] as `.fvecs` to any sink.
pub fn write_fvecs_to(mut w: impl Write, data: &Dataset) -> Result<(), IoError> {
    let hdr = (data.dim() as i32).to_le_bytes();
    for row in data.iter() {
        w.write_all(&hdr)?;
        for v in row {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes a [`Dataset`] as `.fvecs` to disk.
pub fn write_fvecs(path: impl AsRef<Path>, data: &Dataset) -> Result<(), IoError> {
    write_fvecs_to(BufWriter::new(File::create(path)?), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    #[test]
    fn fvecs_round_trip() {
        let d = SynthSpec::new("rt", 23, 7).generate(4);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &d).unwrap();
        let back = read_fvecs_from(&buf[..], "rt", None).unwrap();
        assert_eq!(back.len(), 23);
        assert_eq!(back.dim(), 7);
        assert_eq!(back.as_flat(), d.as_flat());
    }

    #[test]
    fn limit_truncates() {
        let d = SynthSpec::new("rt", 10, 3).generate(4);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &d).unwrap();
        let back = read_fvecs_from(&buf[..], "rt", Some(4)).unwrap();
        assert_eq!(back.len(), 4);
    }

    #[test]
    fn truncated_payload_is_error() {
        let d = SynthSpec::new("rt", 2, 5).generate(4);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &d).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_fvecs_from(&buf[..], "rt", None).unwrap_err();
        assert!(matches!(err, IoError::Malformed(_)), "{err}");
    }

    #[test]
    fn inconsistent_dimension_is_error() {
        let mut buf = Vec::new();
        buf.extend(2i32.to_le_bytes());
        buf.extend(1.0f32.to_le_bytes());
        buf.extend(2.0f32.to_le_bytes());
        buf.extend(3i32.to_le_bytes()); // second record claims d=3
        buf.extend([0u8; 12]);
        let err = read_fvecs_from(&buf[..], "bad", None).unwrap_err();
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn nan_is_rejected() {
        let mut buf = Vec::new();
        buf.extend(1i32.to_le_bytes());
        buf.extend(f32::NAN.to_le_bytes());
        let err = read_fvecs_from(&buf[..], "nan", None).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn negative_dim_is_rejected() {
        let mut buf = Vec::new();
        buf.extend((-4i32).to_le_bytes());
        let err = read_fvecs_from(&buf[..], "neg", None).unwrap_err();
        assert!(err.to_string().contains("non-positive"), "{err}");
    }

    #[test]
    fn absurd_dim_header_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        buf.extend(i32::MAX.to_le_bytes()); // would be an ~8.6 GB record
        let err = read_fvecs_from(&buf[..], "huge", None).unwrap_err();
        assert!(err.to_string().contains("sanity cap"), "{err}");
    }

    #[test]
    fn empty_file_is_error() {
        let err = read_fvecs_from(&[][..], "empty", None).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn ivecs_reads_id_lists() {
        let mut buf = Vec::new();
        for row in [[1i32, 2, 3], [4, 5, 6]] {
            buf.extend(3i32.to_le_bytes());
            for v in row {
                buf.extend(v.to_le_bytes());
            }
        }
        let rows = read_ivecs_from(&buf[..], None).unwrap();
        assert_eq!(rows, vec![vec![1, 2, 3], vec![4, 5, 6]]);
    }

    #[test]
    fn bvecs_reads_bytes() {
        let mut buf = Vec::new();
        buf.extend(2i32.to_le_bytes());
        buf.extend([7u8, 250u8]);
        let d = read_bvecs_from(&buf[..], "b", None).unwrap();
        assert_eq!(d.get(0), &[7.0, 250.0]);
    }
}
