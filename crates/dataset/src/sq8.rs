//! SQ8 scalar quantization: a u8 code table + a *sound* skip bound
//! that lets exact scan loops discard most candidates from cheap
//! integer arithmetic without ever changing their answers.
//!
//! # The code table
//!
//! Each dimension `j` gets an affine map `v ≈ min_j + s_j · c` with
//! `c ∈ {0..255}`, trained from the per-dimension min/max of the rows
//! (`s_j = (max_j − min_j)/255`). Encoding rounds and clamps; rows
//! appended after training (the live memtable) reuse the trained maps,
//! so out-of-range values saturate — which is fine, because the scan
//! never trusts codes for distances, only for the lower bound below.
//!
//! # The skip bound
//!
//! Write `u = (v − min_j)/s_j` for the exact (unrounded) code of a
//! value. The encoder `C(u) = clamp(round(u), 0, 255)` moves a value
//! by at most `0.5` before clamping, and clamping is 1-Lipschitz, so
//! for any two values (in range or not):
//!
//! ```text
//! |u_x − u_q| ≥ |C(u_x) − C(u_q)| − 1
//! ```
//!
//! Multiplying by `s_j` and summing squares with `s_min = min{s_j > 0}`
//! (dimensions with `s_j = 0` encode identically on both sides and
//! contribute 0 to both sides):
//!
//! ```text
//! ‖x − q‖² ≥ s_min² · Σ_j max(|Δc_j| − 1, 0)²
//! ```
//!
//! The right-hand side is exact integer arithmetic (u8 diffs squared
//! into u32 lanes, flushed to u64), i.e. a certified lower bound on
//! the squared Euclidean distance. A candidate is skipped only when
//! the bound already exceeds the current k-th distance by a safety
//! margin covering every float rounding effect in the f32 path — so
//! the surviving set always contains the exact f32 top-k, and results
//! stay bit-identical to the unquantized scan (pinned by proptests).
//!
//! Angular queries prune through the chord identity
//! `‖x − q‖² = 2 − 2·cos θ` — valid only on the unit sphere, so the
//! pruner activates only when every encoded row and the query are
//! unit-norm (within tolerance). Hamming/Jaccard never prune: their
//! distances are not monotone in Euclidean distance.

use crate::metric::{self, Metric};

/// Tolerance for the "is this vector unit-norm" check gating Angular
/// pruning. Normalized f32 data lands well inside this.
const UNIT_NORM_TOL: f64 = 1e-3;

/// u8 lane-difference squares stay below `u32::MAX` for this many
/// dimensions per flush: `4096 · 254² < 2³²`.
const CHUNK: usize = 4096;

/// Dimensions per early-exit block of [`code_bound_exceeds`]: small
/// enough that most of the table is skipped after one or two blocks,
/// large enough for the inner loop to vectorize.
const BLOCK: usize = 16;

/// A trained SQ8 code table over a row-major f32 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8 {
    dim: usize,
    mins: Vec<f32>,
    scales: Vec<f32>,
    codes: Vec<u8>,
    /// `min{s_j : s_j > 0}`; `0.0` when every dimension is constant
    /// (then the bound is vacuous and pruning disables itself).
    s_min: f32,
    /// Every encoded row was unit-norm at encode time (gates Angular).
    unit_rows: bool,
}

impl Sq8 {
    /// Trains per-dimension affine maps on `flat` (row-major, `dim`
    /// columns) and encodes every row.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `flat.len()` is not a multiple of `dim`.
    pub fn train(flat: &[f32], dim: usize) -> Sq8 {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(flat.len() % dim, 0, "flat buffer is not a multiple of dim");
        let rows = flat.len() / dim;
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for row in flat.chunks_exact(dim) {
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        if rows == 0 {
            mins.fill(0.0);
            maxs.fill(0.0);
        }
        let scales: Vec<f32> = mins.iter().zip(&maxs).map(|(&lo, &hi)| (hi - lo) / 255.0).collect();
        let mut sq = Sq8 {
            dim,
            mins,
            scales,
            codes: Vec::with_capacity(flat.len()),
            s_min: 0.0,
            unit_rows: true,
        };
        sq.s_min = Sq8::positive_min(&sq.scales);
        for row in flat.chunks_exact(dim) {
            sq.append(row);
        }
        sq
    }

    /// Reassembles a table from persisted parts (snapshot restore).
    ///
    /// # Panics
    /// Panics on shape mismatches (`mins`/`scales` not `dim` long,
    /// `codes` not a multiple of `dim`).
    pub fn from_parts(
        dim: usize,
        mins: Vec<f32>,
        scales: Vec<f32>,
        codes: Vec<u8>,
        unit_rows: bool,
    ) -> Sq8 {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(mins.len(), dim, "mins length mismatch");
        assert_eq!(scales.len(), dim, "scales length mismatch");
        assert_eq!(codes.len() % dim, 0, "codes length is not a multiple of dim");
        let s_min = Sq8::positive_min(&scales);
        Sq8 { dim, mins, scales, codes, s_min, unit_rows }
    }

    fn positive_min(scales: &[f32]) -> f32 {
        let m = scales.iter().copied().filter(|&s| s > 0.0).fold(f32::INFINITY, f32::min);
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Encodes one value through dimension `j`'s affine map. Computed
    /// in f64 so the only rounding step is the final `round()` — the
    /// skip bound's `−1` slack covers it (see module docs).
    #[inline]
    fn encode(&self, j: usize, v: f32) -> u8 {
        let s = self.scales[j];
        if s <= 0.0 {
            return 0;
        }
        let u = (f64::from(v) - f64::from(self.mins[j])) / f64::from(s);
        u.round().clamp(0.0, 255.0) as u8
    }

    /// Appends one row, encoding it with the trained maps (values
    /// outside the trained range saturate; the bound stays sound).
    ///
    /// # Panics
    /// Panics if `row.len() != dim`.
    pub fn append(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        for (j, &v) in row.iter().enumerate() {
            let c = self.encode(j, v);
            self.codes.push(c);
        }
        if self.unit_rows && (metric::norm(row) - 1.0).abs() > UNIT_NORM_TOL {
            self.unit_rows = false;
        }
    }

    /// Drops all code rows beyond the first `rows` (live-insert
    /// rollback). A no-op if the table already holds fewer rows.
    pub fn truncate(&mut self, rows: usize) {
        self.codes.truncate(rows * self.dim);
    }

    /// Number of encoded rows.
    pub fn rows(&self) -> usize {
        self.codes.len() / self.dim
    }

    /// True when no rows are encoded.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dimensionality of the table.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Per-dimension minima of the affine maps.
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Per-dimension scales of the affine maps.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The flat row-major code matrix.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Whether every encoded row was unit-norm at encode time.
    pub fn unit_rows(&self) -> bool {
        self.unit_rows
    }

    /// Code row `i`.
    #[inline]
    pub fn code_row(&self, i: usize) -> &[u8] {
        &self.codes[i * self.dim..(i + 1) * self.dim]
    }

    /// Reconstructs the approximate value of code row `i` (testing /
    /// introspection; the scan loops never use dequantized values).
    pub fn dequantize(&self, i: usize) -> Vec<f32> {
        self.code_row(i)
            .iter()
            .enumerate()
            .map(|(j, &c)| self.mins[j] + self.scales[j] * f32::from(c))
            .collect()
    }

    /// Encodes an external query vector through the trained maps.
    ///
    /// # Panics
    /// Panics if `q.len() != dim`.
    pub fn encode_query(&self, q: &[f32]) -> Vec<u8> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        q.iter().enumerate().map(|(j, &v)| self.encode(j, v)).collect()
    }

    /// Builds a skip-bound pruner for `q` under `metric`, or `None`
    /// when pruning cannot be sound or useful: non-Euclidean-monotone
    /// metrics (Hamming/Jaccard), an all-constant table (`s_min = 0`),
    /// an empty table, or an Angular query off the unit sphere.
    pub fn pruner(&self, q: &[f32], m: Metric) -> Option<Sq8Pruner<'_>> {
        if q.len() != self.dim || self.is_empty() || self.s_min <= 0.0 {
            return None;
        }
        match m {
            Metric::Euclidean => {}
            Metric::Angular => {
                if !self.unit_rows || (metric::norm(q) - 1.0).abs() > UNIT_NORM_TOL {
                    return None;
                }
            }
            Metric::Hamming | Metric::Jaccard => return None,
        }
        Some(Sq8Pruner {
            sq: self,
            qcode: self.encode_query(q),
            metric: m,
            inv_s2: 1.0 / (f64::from(self.s_min) * f64::from(self.s_min)),
            last_kth: f64::NAN,
            limit: u64::MAX,
        })
    }
}

/// Certified lower bound on `‖x − q‖²` in squared-code units:
/// `Σ_j max(|Δc_j| − 1, 0)²`, computed exactly in integers.
#[inline]
pub fn code_bound_sq(q: &[u8], x: &[u8]) -> u64 {
    debug_assert_eq!(q.len(), x.len());
    let mut total = 0u64;
    for (qc, xc) in q.chunks(CHUNK).zip(x.chunks(CHUNK)) {
        let mut acc = 0u32;
        for (&a, &b) in qc.iter().zip(xc.iter()) {
            // The lane difference fits u8, so the square fits u16
            // (254² < 2¹⁶): keeping the multiply in 16-bit lanes lets
            // the loop vectorize at twice the width of a u32 multiply.
            let t = u16::from(a.abs_diff(b).saturating_sub(1));
            acc += u32::from(t * t);
        }
        total += u64::from(acc);
    }
    total
}

/// Whether the certified lower bound of `code_bound_sq(q, x)` exceeds
/// `limit` — decided block by block, bailing out as soon as the partial
/// sum (which only ever grows) already crosses the limit. For a scan
/// where most candidates are prunable, this touches only the first
/// block or two of most code rows, making the bound several times
/// cheaper than the full f32 distance it replaces.
///
/// Exactly equivalent to `code_bound_sq(q, x) > limit`: every partial
/// sum is a lower bound on the total, so an early `true` can never
/// disagree with the full evaluation.
#[inline]
pub fn code_bound_exceeds(q: &[u8], x: &[u8], limit: u64) -> bool {
    debug_assert_eq!(q.len(), x.len());
    let mut acc = 0u64;
    let mut qi = q.chunks_exact(BLOCK);
    let mut xi = x.chunks_exact(BLOCK);
    for (qc, xc) in (&mut qi).zip(&mut xi) {
        let mut block = 0u32;
        for (&a, &b) in qc.iter().zip(xc.iter()) {
            let t = u16::from(a.abs_diff(b).saturating_sub(1));
            block += u32::from(t * t);
        }
        acc += u64::from(block);
        if acc > limit {
            return true;
        }
    }
    let mut tail = 0u32;
    for (&a, &b) in qi.remainder().iter().zip(xi.remainder().iter()) {
        let t = u16::from(a.abs_diff(b).saturating_sub(1));
        tail += u32::from(t * t);
    }
    acc + u64::from(tail) > limit
}

/// A per-query skip filter over one [`Sq8`] table.
///
/// `skips(row, kth)` answers "is row `row` *provably* too far to beat
/// the current k-th surrogate distance `kth`?" — `true` only when the
/// certified bound exceeds `kth` by the full safety margin, so a scan
/// that consults it returns results bit-identical to one that does
/// not. Callers should only consult it once their top-k heap is full.
pub struct Sq8Pruner<'a> {
    sq: &'a Sq8,
    qcode: Vec<u8>,
    metric: Metric,
    inv_s2: f64,
    last_kth: f64,
    /// `⌊d2_limit(kth) / s_min²⌋` — the skip threshold in squared-code
    /// units, memoized until `kth` changes. Integral because the bound
    /// itself is an integer: `lb > ⌊limit⌋ ⟺ lb > limit` for any
    /// non-negative real limit, so flooring loses nothing and lets the
    /// scan compare (and early-exit) in pure integer arithmetic.
    limit: u64,
}

impl Sq8Pruner<'_> {
    /// Converts the metric's k-th *surrogate* distance into a skip
    /// threshold on true squared Euclidean distance, inflated by
    /// margins that absorb every rounding effect of the f32 path
    /// (4-lane f32 accumulation, `acos`, near-unit norms).
    fn d2_limit(&self, kth_surrogate: f64) -> f64 {
        let rel = 1e-3 + self.sq.dim as f64 * 1e-6;
        match self.metric {
            // Surrogate is already squared Euclidean distance.
            Metric::Euclidean => kth_surrogate * (1.0 + rel),
            // Surrogate is θ; on the (near-)unit sphere
            // ‖x−q‖² = 2 − 2cosθ up to the norm tolerance, which the
            // extra relative + absolute slack covers.
            Metric::Angular => {
                let chord_sq = 2.0 - 2.0 * kth_surrogate.cos();
                chord_sq * (1.0 + 4e-3 + rel) + 1e-5 + self.sq.dim as f64 * 1e-6
            }
            Metric::Hamming | Metric::Jaccard => {
                unreachable!("pruner is never constructed for non-Euclidean-monotone metrics")
            }
        }
    }

    /// Whether code row `row` is provably outside the current top-k
    /// given the k-th surrogate distance `kth_surrogate`.
    #[inline]
    pub fn skips(&mut self, row: usize, kth_surrogate: f64) -> bool {
        if kth_surrogate != self.last_kth {
            self.last_kth = kth_surrogate;
            let l = self.d2_limit(kth_surrogate) * self.inv_s2;
            // Saturate the conversion: an infinite (or absurdly large)
            // limit must mean "never skip", and a NaN (impossible for
            // finite inputs, but belt-and-braces) must not collapse to
            // zero and start skipping everything.
            self.limit = if l.is_nan() { u64::MAX } else { l as u64 };
        }
        code_bound_exceeds(&self.qcode, self.sq.code_row(row), self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_to_flat(rows: &[Vec<f32>]) -> (Vec<f32>, usize) {
        let dim = rows[0].len();
        (rows.iter().flatten().copied().collect(), dim)
    }

    #[test]
    fn quantize_dequantize_error_is_within_half_scale() {
        let rows =
            vec![vec![0.0f32, -5.0, 100.0], vec![1.0, 5.0, 100.0], vec![0.25, 0.0, 100.0]];
        let (flat, dim) = rows_to_flat(&rows);
        let sq = Sq8::train(&flat, dim);
        assert_eq!(sq.rows(), 3);
        for (i, row) in rows.iter().enumerate() {
            let deq = sq.dequantize(i);
            for j in 0..dim {
                let err = (row[j] - deq[j]).abs();
                assert!(
                    f64::from(err) <= f64::from(sq.scales()[j]) * 0.5 + 1e-6,
                    "row {i} dim {j}: err {err} > scale/2 {}",
                    sq.scales()[j] / 2.0
                );
            }
        }
        // The constant dimension is exact and does not poison s_min.
        assert_eq!(sq.scales()[2], 0.0);
        assert!(sq.s_min > 0.0);
    }

    #[test]
    fn bound_is_a_true_lower_bound() {
        let rows = vec![
            vec![0.0f32, 1.0, 2.0, 3.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![-1.0, -2.0, 5.5, 0.5],
        ];
        let (flat, dim) = rows_to_flat(&rows);
        let sq = Sq8::train(&flat, dim);
        let q = vec![0.5f32, 0.5, 0.5, 0.5];
        let qc = sq.encode_query(&q);
        for (i, row) in rows.iter().enumerate() {
            let lb = code_bound_sq(&qc, sq.code_row(i)) as f64
                * f64::from(sq.s_min)
                * f64::from(sq.s_min);
            let true_d2 = metric::squared_euclidean(row, &q);
            assert!(lb <= true_d2 + 1e-9, "row {i}: bound {lb} exceeds true {true_d2}");
        }
    }

    #[test]
    fn appended_out_of_range_rows_saturate_but_stay_sound() {
        let rows = vec![vec![0.0f32, 0.0], vec![1.0, 1.0]];
        let (flat, dim) = rows_to_flat(&rows);
        let mut sq = Sq8::train(&flat, dim);
        sq.append(&[10.0, -10.0]); // far outside the trained range
        assert_eq!(sq.rows(), 3);
        assert_eq!(sq.code_row(2), &[255, 0], "values clamp to the code range");
        let q = vec![10.0f32, -10.0];
        let qc = sq.encode_query(&q);
        let lb = code_bound_sq(&qc, sq.code_row(2)) as f64
            * f64::from(sq.s_min)
            * f64::from(sq.s_min);
        // True distance is 0; the bound must not exceed it.
        assert_eq!(lb, 0.0);
    }

    #[test]
    fn truncate_rolls_back_appends() {
        let rows = vec![vec![0.0f32], vec![1.0]];
        let (flat, dim) = rows_to_flat(&rows);
        let mut sq = Sq8::train(&flat, dim);
        sq.append(&[0.5]);
        assert_eq!(sq.rows(), 3);
        sq.truncate(2);
        assert_eq!(sq.rows(), 2);
        sq.truncate(5);
        assert_eq!(sq.rows(), 2, "truncating beyond the end is a no-op");
    }

    #[test]
    fn pruner_gating() {
        let rows = vec![vec![1.0f32, 0.0], vec![0.0, 1.0]];
        let (flat, dim) = rows_to_flat(&rows);
        let sq = Sq8::train(&flat, dim);
        let q = [1.0f32, 0.0];
        assert!(sq.pruner(&q, Metric::Euclidean).is_some());
        assert!(sq.pruner(&q, Metric::Angular).is_some(), "unit rows + unit query activate");
        assert!(sq.pruner(&q, Metric::Hamming).is_none());
        assert!(sq.pruner(&q, Metric::Jaccard).is_none());
        assert!(sq.pruner(&[5.0, 0.0], Metric::Angular).is_none(), "non-unit query deactivates");
        assert!(sq.pruner(&[1.0], Metric::Euclidean).is_none(), "dim mismatch deactivates");
        // Non-unit rows deactivate Angular but not Euclidean.
        let sq2 = Sq8::train(&[3.0f32, 4.0, 1.0, 0.0], 2);
        assert!(!sq2.unit_rows());
        assert!(sq2.pruner(&q, Metric::Angular).is_none());
        assert!(sq2.pruner(&q, Metric::Euclidean).is_some());
        // All-constant tables never prune.
        let sq3 = Sq8::train(&[2.0f32, 2.0, 2.0, 2.0], 2);
        assert!(sq3.pruner(&q, Metric::Euclidean).is_none());
    }

    #[test]
    fn pruner_never_skips_a_winner() {
        // Exhaustive-ish randomized check: for every candidate the
        // pruner skips, its true surrogate must exceed the kth value.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
        for _ in 0..50 {
            let dim = rng.gen_range(1..24);
            let n = rng.gen_range(1..80);
            let flat: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let sq = Sq8::train(&flat, dim);
            let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let Some(mut p) = sq.pruner(&q, Metric::Euclidean) else { continue };
            for i in 0..n {
                let s = metric::squared_euclidean(&flat[i * dim..(i + 1) * dim], &q);
                // Use every other row's surrogate as a hypothetical kth.
                for j in 0..n {
                    let kth = metric::squared_euclidean(&flat[j * dim..(j + 1) * dim], &q);
                    if p.skips(i, kth) {
                        assert!(s > kth, "skipped row {i} with s={s} <= kth={kth}");
                    }
                }
            }
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let rows = vec![vec![0.0f32, 2.0], vec![1.0, 3.0]];
        let (flat, dim) = rows_to_flat(&rows);
        let sq = Sq8::train(&flat, dim);
        let back = Sq8::from_parts(
            sq.dim(),
            sq.mins().to_vec(),
            sq.scales().to_vec(),
            sq.codes().to_vec(),
            sq.unit_rows(),
        );
        assert_eq!(back, sq);
    }

    #[test]
    fn code_bound_exceeds_agrees_with_the_full_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xb10c);
        for _ in 0..200 {
            // Lengths straddling the early-exit block size, including
            // the remainder-only and empty cases.
            let dim = rng.gen_range(0..3 * BLOCK + 5);
            let q: Vec<u8> = (0..dim).map(|_| rng.gen()).collect();
            let x: Vec<u8> = (0..dim).map(|_| rng.gen()).collect();
            let full = code_bound_sq(&q, &x);
            // Probe right at the decision boundary and around it.
            for limit in [0, full.saturating_sub(1), full, full + 1, u64::MAX] {
                assert_eq!(
                    code_bound_exceeds(&q, &x, limit),
                    full > limit,
                    "dim {dim} full {full} limit {limit}"
                );
            }
        }
    }

    #[test]
    fn code_bound_handles_long_vectors_without_overflow() {
        // Worst-case lane value everywhere, beyond one flush chunk.
        let dim = CHUNK + 17;
        let q = vec![0u8; dim];
        let x = vec![255u8; dim];
        let expect = (dim as u64) * 254 * 254;
        assert_eq!(code_bound_sq(&q, &x), expect);
    }
}
