//! Exact k-NN ground truth, the oracle behind the paper's recall and overall
//! ratio metrics (§6.2).
//!
//! Brute force with a bounded max-heap per query, parallelized over queries
//! with `crossbeam`. For the reproduction's default scales (2·10^4 … 10^6
//! vectors, 100 queries) this is the fastest correct choice and serves as the
//! "linear scan" cost reference for the α = 0 row of Table 1.

use crate::metric::Metric;
use crate::sq8::Sq8Pruner;
use crate::store::Dataset;
use std::cmp::Ordering;

/// One neighbor in a ground-truth list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the data object in the dataset.
    pub id: u32,
    /// True distance to the query under the chosen metric.
    pub dist: f64,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order: by distance, ties by id, NaN pushed last (treated as
        // +inf; the loaders reject NaN but belt-and-braces for user data).
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact k-NN lists for a whole query set.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    k: usize,
    /// Row-major: `lists[q * k + i]` is the i-th NN of query q.
    lists: Vec<Neighbor>,
}

impl GroundTruth {
    /// Neighbors requested per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of queries covered.
    pub fn num_queries(&self) -> usize {
        self.lists.len().checked_div(self.k).unwrap_or(0)
    }

    /// The exact k-NN list of query `q`, ascending by distance.
    pub fn neighbors(&self, q: usize) -> &[Neighbor] {
        &self.lists[q * self.k..(q + 1) * self.k]
    }

    /// Distance of the i-th exact NN of query `q` (`i` is 0-based).
    pub fn dist(&self, q: usize, i: usize) -> f64 {
        self.neighbors(q)[i].dist
    }
}

/// Builder/entry point for exact search.
pub struct ExactKnn;

impl ExactKnn {
    /// Computes exact k-NN of every query against `data`.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > data.len()`, or dimensions mismatch.
    pub fn compute(data: &Dataset, queries: &Dataset, k: usize, metric: Metric) -> GroundTruth {
        assert!(k > 0, "k must be positive");
        assert!(k <= data.len(), "k = {} exceeds dataset size {}", k, data.len());
        assert_eq!(data.dim(), queries.dim(), "data/query dimension mismatch");

        let nq = queries.len();
        let mut lists = vec![Neighbor { id: 0, dist: f64::INFINITY }; nq * k];
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(16);
        let chunk = nq.div_ceil(threads).max(1);

        crossbeam::scope(|scope| {
            for (t, out) in lists.chunks_mut(chunk * k).enumerate() {
                scope.spawn(move |_| {
                    let q0 = t * chunk;
                    for (r, slot) in out.chunks_exact_mut(k).enumerate() {
                        let q = queries.get(q0 + r);
                        let mut pruner = Self::pruner_for(data, q, metric);
                        let knn = Self::scan(data, q, k, metric, pruner.as_mut());
                        slot.copy_from_slice(&knn);
                    }
                });
            }
        })
        .expect("ground-truth thread panicked");

        GroundTruth { k, lists }
    }

    /// Exact k-NN of one query, ascending by (distance, id).
    ///
    /// When the dataset already carries an [`crate::sq8::Sq8`] code
    /// table (see [`Dataset::sq8`]), the scan consults its certified
    /// skip bound to avoid most full-width distance computations. The
    /// bound is sound, so the result is bit-identical either way.
    pub fn single_query(data: &Dataset, query: &[f32], k: usize, metric: Metric) -> Vec<Neighbor> {
        assert_eq!(data.dim(), query.len(), "data/query dimension mismatch");
        let mut pruner = Self::pruner_for(data, query, metric);
        Self::scan(data, query, k, metric, pruner.as_mut())
    }

    /// The skip-bound pruner for a query over `data`'s cached code
    /// table, when one exists and covers every row.
    fn pruner_for<'a>(data: &'a Dataset, query: &[f32], metric: Metric) -> Option<Sq8Pruner<'a>> {
        let sq = data.sq8_if_built()?;
        if sq.rows() != data.len() {
            return None;
        }
        sq.pruner(query, metric)
    }

    /// The shared scan loop: bounded max-heap on the surrogate
    /// distance, with an optional sound skip bound consulted only once
    /// the heap is full (the dimension was checked by the caller, so
    /// the scan uses the debug-assert metric variant).
    fn scan(
        data: &Dataset,
        query: &[f32],
        k: usize,
        metric: Metric,
        mut pruner: Option<&mut Sq8Pruner>,
    ) -> Vec<Neighbor> {
        let mut heap: std::collections::BinaryHeap<Neighbor> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        for (id, v) in data.iter().enumerate() {
            if heap.len() == k {
                if let Some(p) = pruner.as_deref_mut() {
                    let kth = heap.peek().expect("non-empty").dist;
                    if p.skips(id, kth) {
                        continue;
                    }
                }
            }
            let s = metric.surrogate_unchecked(v, query);
            if heap.len() < k {
                heap.push(Neighbor { id: id as u32, dist: s });
            } else if s < heap.peek().expect("non-empty").dist {
                heap.pop();
                heap.push(Neighbor { id: id as u32, dist: s });
            }
        }
        let mut out = heap.into_sorted_vec();
        for n in &mut out {
            n.dist = metric.from_surrogate(n.dist);
        }
        out
    }

    /// Exact *predicate-filtered range* top-k of one query: the `k`
    /// nearest rows whose id passes `accepts` and whose true distance is
    /// within `max_dist` (if given), ascending by (distance, id).
    ///
    /// This is the brute-force oracle the filtered/range search tests
    /// compare every index (and the wire protocol) against. The
    /// predicate is a plain closure so callers can plug in an
    /// `ann::IdFilter`, a tombstone set, or anything else without this
    /// crate growing a dependency.
    pub fn single_query_filtered(
        data: &Dataset,
        query: &[f32],
        k: usize,
        metric: Metric,
        mut accepts: impl FnMut(u32) -> bool,
        max_dist: Option<f64>,
    ) -> Vec<Neighbor> {
        assert_eq!(data.dim(), query.len(), "data/query dimension mismatch");
        let mut heap: std::collections::BinaryHeap<Neighbor> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        for (id, v) in data.iter().enumerate() {
            let id = id as u32;
            if !accepts(id) {
                continue;
            }
            let s = metric.surrogate_unchecked(v, query);
            // The threshold compares the converted distance — identical
            // arithmetic to what callers see in the result — so index
            // paths and this oracle can never disagree by a rounding ulp.
            if let Some(d) = max_dist {
                if metric.from_surrogate(s) > d {
                    continue;
                }
            }
            let cand = Neighbor { id, dist: s };
            if heap.len() < k {
                heap.push(cand);
            } else if cand < *heap.peek().expect("non-empty") {
                heap.pop();
                heap.push(cand);
            }
        }
        let mut out = heap.into_sorted_vec();
        for n in &mut out {
            n.dist = metric.from_surrogate(n.dist);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    fn grid() -> Dataset {
        // 5 points on a line: 0, 1, 2, 3, 10
        Dataset::from_rows(
            "line",
            &[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![10.0]],
        )
    }

    #[test]
    fn single_query_orders_by_distance() {
        let d = grid();
        let knn = ExactKnn::single_query(&d, &[1.2], 3, Metric::Euclidean);
        let ids: Vec<u32> = knn.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 2, 0]);
        assert!((knn[0].dist - 0.2).abs() < 1e-6);
    }

    #[test]
    fn compute_matches_single_query() {
        let data = SynthSpec::new("t", 200, 8).generate(5);
        let queries = data.sample_queries(7, 3);
        let gt = ExactKnn::compute(&data, &queries, 4, Metric::Euclidean);
        assert_eq!(gt.num_queries(), 7);
        for q in 0..7 {
            let manual = ExactKnn::single_query(&data, queries.get(q), 4, Metric::Euclidean);
            assert_eq!(gt.neighbors(q), &manual[..]);
        }
    }

    #[test]
    fn member_query_has_zero_first_distance() {
        let data = SynthSpec::new("t", 100, 6).generate(1);
        let queries = data.sample_queries(3, 2);
        let gt = ExactKnn::compute(&data, &queries, 2, Metric::Euclidean);
        for q in 0..3 {
            assert!(gt.dist(q, 0) < 1e-6, "query drawn from data must match itself");
        }
    }

    #[test]
    fn angular_ground_truth() {
        let data = Dataset::from_rows(
            "ang",
            &[vec![1.0, 0.0], vec![0.8, 0.6], vec![0.0, 1.0], vec![-1.0, 0.0]],
        );
        let knn = ExactKnn::single_query(&data, &[1.0, 0.1], 2, Metric::Angular);
        assert_eq!(knn[0].id, 0);
        assert_eq!(knn[1].id, 1);
    }

    #[test]
    fn distances_are_ascending() {
        let data = SynthSpec::new("t", 300, 4).generate(8);
        let queries = data.sample_queries(5, 1);
        let gt = ExactKnn::compute(&data, &queries, 10, Metric::Euclidean);
        for q in 0..5 {
            let ns = gt.neighbors(q);
            for w in ns.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let d = grid();
        ExactKnn::compute(&d, &d, 0, Metric::Euclidean);
    }

    #[test]
    #[should_panic(expected = "exceeds dataset size")]
    fn oversized_k_panics() {
        let d = grid();
        ExactKnn::compute(&d, &d, 6, Metric::Euclidean);
    }

    #[test]
    fn filtered_oracle_restricts_and_thresholds() {
        let d = grid(); // points 0, 1, 2, 3, 10
        // No predicate, no threshold: identical to the plain oracle.
        let plain = ExactKnn::single_query(&d, &[1.2], 3, Metric::Euclidean);
        let same =
            ExactKnn::single_query_filtered(&d, &[1.2], 3, Metric::Euclidean, |_| true, None);
        assert_eq!(plain, same);
        // Predicate: only odd ids.
        let odd =
            ExactKnn::single_query_filtered(&d, &[1.2], 3, Metric::Euclidean, |id| id % 2 == 1, None);
        assert_eq!(odd.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3]);
        // Threshold: the far point never qualifies; fewer than k is fine.
        let near = ExactKnn::single_query_filtered(
            &d,
            &[1.2],
            5,
            Metric::Euclidean,
            |_| true,
            Some(2.0),
        );
        assert_eq!(near.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 2, 0, 3]);
        assert!(near.iter().all(|n| n.dist <= 2.0));
        // Both compose.
        let both = ExactKnn::single_query_filtered(
            &d,
            &[1.2],
            5,
            Metric::Euclidean,
            |id| id != 1,
            Some(2.0),
        );
        assert_eq!(both.iter().map(|n| n.id).collect::<Vec<_>>(), vec![2, 0, 3]);
    }

    #[test]
    fn sq8_pruned_scan_is_bit_identical() {
        for metric in [Metric::Euclidean, Metric::Angular] {
            let mut data = SynthSpec::new("t", 600, 16).generate(11);
            if metric.is_angular() {
                data = data.normalized();
            }
            let queries = data.sample_queries(20, 7);
            // Oracle: no code table cached, pure f32 scan.
            assert!(data.sq8_if_built().is_none());
            let plain = ExactKnn::compute(&data, &queries, 10, metric);
            // Primed copy: same vectors, SQ8 skip bound active.
            let primed = data.clone();
            primed.sq8();
            let fast = ExactKnn::compute(&primed, &queries, 10, metric);
            for q in 0..queries.len() {
                let (a, b) = (plain.neighbors(q), fast.neighbors(q));
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.id, y.id, "{} query {q}", metric.name());
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "{} query {q}", metric.name());
                }
            }
        }
    }

    #[test]
    fn neighbor_ordering_total() {
        let a = Neighbor { id: 1, dist: 1.0 };
        let b = Neighbor { id: 2, dist: 1.0 };
        let c = Neighbor { id: 0, dist: 2.0 };
        assert!(a < b && b < c);
    }
}
