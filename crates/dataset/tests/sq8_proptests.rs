//! Property tests pinning the two guarantees the SQ8 fast-scan path
//! rests on (see `dataset::sq8` module docs):
//!
//! 1. **Reconstruction**: quantize → dequantize moves every trained
//!    value by at most half a quantization step (`scale/2`, plus f32
//!    decode rounding).
//! 2. **Bit-identity**: an exact scan that consults the certified skip
//!    bound returns the *same bits* as one that does not — same ids,
//!    same f64 distance bits — across metrics, random data, random
//!    queries, and random id filters. The bound may only ever discard
//!    provable losers.

use dataset::exact::ExactKnn;
use dataset::sq8::Sq8;
use dataset::{metric, Dataset, Metric};
use proptest::collection::vec;
use proptest::prelude::*;

/// Row-major matrix strategy: `n` rows × `dim` columns in ±`span`.
fn matrix(n: usize, dim: usize, span: f32) -> impl Strategy<Value = Vec<f32>> {
    vec(-span..span, n * dim)
}

/// Normalizes every `dim`-row of `flat` onto the unit sphere, nudging
/// degenerate all-zero rows off the origin first so Angular is defined.
fn unit_rows(mut flat: Vec<f32>, dim: usize) -> Vec<f32> {
    for row in flat.chunks_exact_mut(dim) {
        if metric::norm(row) < 1e-6 {
            row[0] = 1.0;
        }
        let n = metric::norm(row) as f32;
        row.iter_mut().for_each(|x| *x /= n);
    }
    flat
}

fn bits(ns: &[dataset::exact::Neighbor]) -> Vec<(u32, u64)> {
    ns.iter().map(|n| (n.id, n.dist.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantize → dequantize error stays within half a step of the
    /// per-dimension affine map. The slack term covers the f32
    /// arithmetic of `dequantize` (encode itself rounds in f64).
    #[test]
    fn quantize_dequantize_error_is_at_most_half_scale(
        (n, dim, flat) in (1usize..=32, 1usize..=24).prop_flat_map(|(n, dim)| {
            (Just(n), Just(dim), matrix(n, dim, 100.0))
        }),
    ) {
        let sq = Sq8::train(&flat, dim);
        prop_assert_eq!(sq.rows(), n);
        for i in 0..n {
            let row = &flat[i * dim..(i + 1) * dim];
            let deq = sq.dequantize(i);
            for j in 0..dim {
                let err = f64::from((row[j] - deq[j]).abs());
                let half_step = f64::from(sq.scales()[j]) * 0.5;
                let slack = 1e-4 * (1.0 + f64::from(row[j].abs()));
                prop_assert!(
                    err <= half_step + slack,
                    "row {} dim {}: err {} > scale/2 {} (+{})",
                    i, j, err, half_step, slack
                );
            }
        }
    }

    /// The skip bound never discards a candidate that would beat the
    /// k-th distance: whenever `skips` fires, the candidate's true
    /// surrogate distance strictly exceeds the threshold it was tested
    /// against. This is the soundness fact that makes bit-identity
    /// possible at all.
    #[test]
    fn skip_bound_never_discards_a_winner(
        (n, dim, flat, q) in (2usize..=48, 1usize..=16).prop_flat_map(|(n, dim)| {
            (Just(n), Just(dim), matrix(n, dim, 8.0), vec(-8.0f32..8.0, dim))
        }),
        angular in any::<bool>(),
    ) {
        let (metric, flat, q) = if angular {
            (Metric::Angular, unit_rows(flat, dim), unit_rows(q, dim))
        } else {
            (Metric::Euclidean, flat, q)
        };
        let sq = Sq8::train(&flat, dim);
        // Gated off (constant table, off-sphere query, …): nothing to
        // check — the scan simply runs unpruned.
        prop_assume!(sq.pruner(&q, metric).is_some());
        let mut pruner = sq.pruner(&q, metric).expect("checked above");
        let surrogates: Vec<f64> = (0..n)
            .map(|i| metric.surrogate_unchecked(&flat[i * dim..(i + 1) * dim], &q))
            .collect();
        for i in 0..n {
            for &kth in &surrogates {
                if pruner.skips(i, kth) {
                    prop_assert!(
                        surrogates[i] > kth,
                        "skipped row {} with surrogate {} <= kth {}",
                        i, surrogates[i], kth
                    );
                }
            }
        }
    }

    /// End to end: `ExactKnn` over a dataset with a primed SQ8 table
    /// returns bit-identical top-k to the same dataset without one —
    /// for both prunable metrics, with and without an id filter.
    #[test]
    fn pruned_exact_topk_is_bit_identical_to_the_plain_scan(
        (n, dim, flat, q) in (8usize..=120, 1usize..=16).prop_flat_map(|(n, dim)| {
            (Just(n), Just(dim), matrix(n, dim, 10.0), vec(-10.0f32..10.0, dim))
        }),
        k in 1usize..=8,
        angular in any::<bool>(),
        modulus in 2u32..=4,
    ) {
        let k = k.min(n);
        let (metric, flat, q) = if angular {
            (Metric::Angular, unit_rows(flat, dim), unit_rows(q, dim))
        } else {
            (Metric::Euclidean, flat, q)
        };
        let plain = Dataset::from_flat("plain", dim, flat.clone());
        prop_assert!(plain.sq8_if_built().is_none());
        let primed = Dataset::from_flat("primed", dim, flat);
        primed.sq8();
        prop_assert!(primed.sq8_if_built().is_some());

        let want = ExactKnn::single_query(&plain, &q, k, metric);
        let got = ExactKnn::single_query(&primed, &q, k, metric);
        prop_assert_eq!(bits(&got), bits(&want));

        // Filtered oracle agreement: both datasets restricted to the
        // same id subset still answer identically (the pruner must not
        // interact with which candidates the caller excludes).
        let accepts = |id: u32| id.is_multiple_of(modulus);
        let want_f =
            ExactKnn::single_query_filtered(&plain, &q, k, metric, accepts, None);
        let got_f =
            ExactKnn::single_query_filtered(&primed, &q, k, metric, accepts, None);
        prop_assert_eq!(bits(&got_f), bits(&want_f));
    }
}
