//! Index persistence for LCCS-LSH and MP-LCCS-LSH.
//!
//! The hash functions are trait objects, but every family is sampled
//! deterministically from `(family, dim, m, params, seed)` — so the payload
//! only stores the build parameters, the metric, and the CSA bytes; loading
//! re-samples the identical functions and attaches the caller's dataset.
//! The expensive part (the `O(m n log n)` CSA build plus the `O(n m η(d))`
//! hashing pass) is skipped entirely on load, which is what makes the
//! indexing-time amortization of Figures 6–7 practical across runs — and
//! what makes snapshot-backed serving (`crates/serve`) start instantly.
//!
//! Both schemes also implement the workspace-wide [`ann::PersistAnn`]
//! contract; the serving catalog restores them by method name through
//! `eval::registry`.

use crate::index::{LccsLsh, LccsParams};
use crate::multiprobe::{MpLccsLsh, MpParams};
use ann::{PersistAnn, PersistError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use csa::Csa;
use dataset::{Dataset, Metric};
use lsh::{sample_family, FamilyKind};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"LCC1";
const MP_MAGIC: &[u8; 4] = b"MPL1";

/// Errors raised when loading a serialized index.
#[derive(Debug)]
pub enum LoadError {
    /// Magic/version mismatch.
    BadMagic,
    /// Payload too short or field out of range.
    Malformed(String),
    /// The CSA section failed to decode.
    Csa(csa::serialize::DecodeError),
    /// The supplied dataset does not match the serialized index shape.
    DatasetMismatch(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "not an LCC1 payload"),
            LoadError::Malformed(m) => write!(f, "malformed index payload: {m}"),
            LoadError::Csa(e) => write!(f, "bad CSA section: {e}"),
            LoadError::DatasetMismatch(m) => write!(f, "dataset mismatch: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

fn metric_tag(m: Metric) -> u8 {
    match m {
        Metric::Euclidean => 0,
        Metric::Angular => 1,
        Metric::Hamming => 2,
        Metric::Jaccard => 3,
    }
}

fn metric_from_tag(t: u8) -> Option<Metric> {
    Some(match t {
        0 => Metric::Euclidean,
        1 => Metric::Angular,
        2 => Metric::Hamming,
        3 => Metric::Jaccard,
        _ => return None,
    })
}

fn family_tag(f: FamilyKind) -> u8 {
    match f {
        FamilyKind::RandomProjection => 0,
        FamilyKind::CrossPolytope => 1,
        FamilyKind::CrossPolytopeFast => 2,
        FamilyKind::BitSampling => 3,
        FamilyKind::MinHash => 4,
    }
}

fn family_from_tag(t: u8) -> Option<FamilyKind> {
    Some(match t {
        0 => FamilyKind::RandomProjection,
        1 => FamilyKind::CrossPolytope,
        2 => FamilyKind::CrossPolytopeFast,
        3 => FamilyKind::BitSampling,
        4 => FamilyKind::MinHash,
        _ => return None,
    })
}

impl LccsLsh {
    /// Serializes the index (parameters + CSA). The dataset itself is *not*
    /// stored; [`LccsLsh::load`] re-attaches it.
    pub fn save(&self) -> Bytes {
        let csa_bytes = self.csa().to_bytes();
        let p = self.params();
        let mut buf = BytesMut::with_capacity(csa_bytes.len() + 64);
        buf.put_slice(MAGIC);
        buf.put_u8(metric_tag(self.metric()));
        buf.put_u8(family_tag(p.family));
        buf.put_u64_le(p.m as u64);
        buf.put_u64_le(p.seed);
        buf.put_f64_le(p.family_params.w);
        buf.put_u64_le(self.data().dim() as u64);
        buf.put_slice(&csa_bytes);
        buf.freeze()
    }

    /// Loads an index saved by [`LccsLsh::save`], re-sampling the hash
    /// functions deterministically and attaching `data` (which must be the
    /// dataset the index was built over — shape is validated, contents are
    /// the caller's responsibility, as with any external index file).
    pub fn load(mut buf: impl Buf, data: Arc<Dataset>) -> Result<LccsLsh, LoadError> {
        if buf.remaining() < 4 + 2 + 8 * 4 {
            return Err(LoadError::Malformed("payload too short".into()));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(LoadError::BadMagic);
        }
        let metric = metric_from_tag(buf.get_u8())
            .ok_or_else(|| LoadError::Malformed("unknown metric tag".into()))?;
        let family = family_from_tag(buf.get_u8())
            .ok_or_else(|| LoadError::Malformed("unknown family tag".into()))?;
        let m = buf.get_u64_le() as usize;
        let seed = buf.get_u64_le();
        let w = buf.get_f64_le();
        let dim = buf.get_u64_le() as usize;
        if dim != data.dim() {
            return Err(LoadError::DatasetMismatch(format!(
                "index built for dim {dim}, dataset has {}",
                data.dim()
            )));
        }
        if !(w.is_finite() && w > 0.0) {
            return Err(LoadError::Malformed(format!("bad bucket width {w}")));
        }
        let csa = Csa::from_bytes(buf).map_err(LoadError::Csa)?;
        if csa.len() != data.len() {
            return Err(LoadError::DatasetMismatch(format!(
                "index holds {} strings, dataset has {} vectors",
                csa.len(),
                data.len()
            )));
        }
        if csa.m() != m {
            return Err(LoadError::Malformed("CSA m disagrees with header".into()));
        }
        let params = LccsParams { m, family, family_params: lsh::FamilyParams { w }, seed };
        let funcs = sample_family(family, dim, m, &params.family_params, seed);
        Ok(LccsLsh::from_parts(data, metric, funcs, csa, params))
    }
}

impl MpLccsLsh {
    /// Serializes the index: the multi-probe knobs followed by the wrapped
    /// [`LccsLsh`] payload. Like [`LccsLsh::save`], the dataset is not
    /// stored; [`MpLccsLsh::load`] re-attaches it.
    pub fn save(&self) -> Bytes {
        let inner = self.inner().save();
        let mp = self.mp_params();
        let mut buf = BytesMut::with_capacity(inner.len() + 20);
        buf.put_slice(MP_MAGIC);
        buf.put_u64_le(mp.probes as u64);
        buf.put_u64_le(mp.max_alts as u64);
        buf.put_slice(&inner);
        buf.freeze()
    }

    /// Loads an index saved by [`MpLccsLsh::save`].
    pub fn load(mut buf: impl Buf, data: Arc<Dataset>) -> Result<MpLccsLsh, LoadError> {
        if buf.remaining() < 4 + 16 {
            return Err(LoadError::Malformed("payload too short".into()));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MP_MAGIC {
            return Err(LoadError::BadMagic);
        }
        let probes = buf.get_u64_le() as usize;
        let max_alts = buf.get_u64_le() as usize;
        if probes == 0 {
            return Err(LoadError::Malformed("probe count must be at least 1".into()));
        }
        let inner = LccsLsh::load(buf, data)?;
        Ok(MpLccsLsh::from_inner(inner, MpParams { probes, max_alts }))
    }
}

impl From<LoadError> for PersistError {
    fn from(e: LoadError) -> Self {
        match e {
            LoadError::BadMagic => PersistError::BadMagic,
            LoadError::Malformed(m) => PersistError::Malformed(m),
            LoadError::Csa(e) => PersistError::Malformed(e.to_string()),
            LoadError::DatasetMismatch(m) => PersistError::DatasetMismatch(m),
        }
    }
}

impl PersistAnn for LccsLsh {
    fn snapshot_bytes(&self) -> Vec<u8> {
        self.save().to_vec()
    }

    fn restore(payload: &[u8], data: Arc<Dataset>) -> Result<Self, PersistError> {
        LccsLsh::load(payload, data).map_err(PersistError::from)
    }
}

impl PersistAnn for MpLccsLsh {
    fn snapshot_bytes(&self) -> Vec<u8> {
        self.save().to_vec()
    }

    fn restore(payload: &[u8], data: Arc<Dataset>) -> Result<Self, PersistError> {
        MpLccsLsh::load(payload, data).map_err(PersistError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn build() -> (Arc<Dataset>, LccsLsh) {
        let data = Arc::new(SynthSpec::sift_like().with_n(400).generate(3));
        let idx = LccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(30.0).with_m(16).with_seed(77),
        );
        (data, idx)
    }

    #[test]
    fn save_load_round_trip_answers_identically() {
        let (data, idx) = build();
        let payload = idx.save();
        let back = LccsLsh::load(payload, data.clone()).expect("load");
        for i in [0usize, 100, 399] {
            let a = idx.query(data.get(i), 5, 64);
            let b = back.query(data.get(i), 5, 64);
            assert_eq!(
                a.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn load_rejects_wrong_dataset_shape() {
        let (_, idx) = build();
        let payload = idx.save();
        let wrong_dim = Arc::new(SynthSpec::new("x", 400, 64).generate(1));
        assert!(matches!(
            LccsLsh::load(payload.clone(), wrong_dim),
            Err(LoadError::DatasetMismatch(_))
        ));
        let wrong_n = Arc::new(SynthSpec::sift_like().with_n(100).generate(1));
        assert!(matches!(
            LccsLsh::load(payload, wrong_n),
            Err(LoadError::DatasetMismatch(_))
        ));
    }

    #[test]
    fn load_rejects_corrupt_headers() {
        let (data, idx) = build();
        let good = idx.save().to_vec();
        // magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(LccsLsh::load(&bad[..], data.clone()), Err(LoadError::BadMagic)));
        // metric tag
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(LccsLsh::load(&bad[..], data.clone()).is_err());
        // family tag
        let mut bad = good.clone();
        bad[5] = 99;
        assert!(LccsLsh::load(&bad[..], data.clone()).is_err());
        // truncated
        assert!(LccsLsh::load(&good[..10], data).is_err());
    }

    #[test]
    fn angular_index_round_trips() {
        let data = Arc::new(SynthSpec::glove_like().with_n(200).generate(4).normalized());
        let idx = LccsLsh::build(data.clone(), Metric::Angular, &LccsParams::angular().with_m(8));
        let back = LccsLsh::load(idx.save(), data.clone()).unwrap();
        assert_eq!(back.metric(), Metric::Angular);
        let a = idx.query(data.get(7), 3, 32);
        let b = back.query(data.get(7), 3, 32);
        assert_eq!(a.neighbors[0].id, b.neighbors[0].id);
    }

    /// A dataset suited to `metric`: 0/1 indicator vectors for the
    /// Hamming/Jaccard families, clustered Gaussians otherwise.
    fn data_for(metric: Metric) -> Arc<Dataset> {
        match metric {
            Metric::Euclidean => Arc::new(SynthSpec::new("e", 300, 24).with_clusters(8).generate(9)),
            Metric::Angular => {
                Arc::new(SynthSpec::new("a", 300, 24).with_clusters(8).generate(9).normalized())
            }
            Metric::Hamming | Metric::Jaccard => {
                let raw = SynthSpec::new("b", 300, 32).with_clusters(8).generate(9);
                let flat: Vec<f32> =
                    raw.as_flat().iter().map(|&x| f32::from(x > 0.0)).collect();
                Arc::new(Dataset::from_flat("bits", 32, flat))
            }
        }
    }

    fn params_for(metric: Metric) -> LccsParams {
        match metric {
            Metric::Euclidean => LccsParams::euclidean(8.0),
            Metric::Angular => LccsParams::angular(),
            Metric::Hamming => LccsParams::hamming(),
            Metric::Jaccard => LccsParams::jaccard(),
        }
        .with_m(16)
        .with_seed(21)
    }

    #[test]
    fn round_trip_covers_every_metric_variant() {
        for metric in [Metric::Euclidean, Metric::Angular, Metric::Hamming, Metric::Jaccard] {
            let data = data_for(metric);
            let idx = LccsLsh::build(data.clone(), metric, &params_for(metric));
            let back = LccsLsh::load(idx.save(), data.clone())
                .unwrap_or_else(|e| panic!("{} load failed: {e}", metric.name()));
            assert_eq!(back.metric(), metric);
            for i in [0usize, 60, 299] {
                let a = idx.query(data.get(i), 5, 48);
                let b = back.query(data.get(i), 5, 48);
                assert_eq!(
                    a.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
                    b.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
                    "{} round trip must answer identically",
                    metric.name()
                );
            }
        }
    }

    #[test]
    fn mp_round_trip_covers_every_metric_variant() {
        use crate::multiprobe::{MpLccsLsh, MpParams};
        for metric in [Metric::Euclidean, Metric::Angular, Metric::Hamming, Metric::Jaccard] {
            let data = data_for(metric);
            let mp = MpLccsLsh::build(
                data.clone(),
                metric,
                &params_for(metric),
                MpParams { probes: 9, max_alts: 4 },
            );
            let back = MpLccsLsh::load(mp.save(), data.clone())
                .unwrap_or_else(|e| panic!("{} load failed: {e}", metric.name()));
            assert_eq!(back.mp_params().probes, 9);
            assert_eq!(back.mp_params().max_alts, 4);
            for i in [3usize, 150] {
                let a = mp.query(data.get(i), 5, 32);
                let b = back.query(data.get(i), 5, 32);
                assert_eq!(
                    a.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
                    b.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
                    "{} MP round trip must answer identically",
                    metric.name()
                );
            }
        }
    }

    #[test]
    fn truncated_csa_section_is_rejected() {
        let (data, idx) = build();
        let good = idx.save().to_vec();
        // The fixed LCC1 header is 4 + 2 + 4*8 bytes; anything cut inside the
        // CSA section must surface as a decode error, never a panic.
        let header = 4 + 2 + 8 * 4;
        for cut in [header, header + 4, good.len() - 1] {
            match LccsLsh::load(&good[..cut], data.clone()) {
                Err(LoadError::Csa(_)) | Err(LoadError::Malformed(_)) => {}
                Err(other) => panic!("cut at {cut}: wrong error kind {other:?}"),
                Ok(_) => panic!("cut at {cut} must fail with a decode error"),
            }
        }
    }

    #[test]
    fn mp_payload_corruption_is_rejected() {
        use crate::multiprobe::{MpLccsLsh, MpParams};
        let (data, idx) = build();
        let mp = MpLccsLsh::from_inner(idx, MpParams { probes: 5, max_alts: 4 });
        let good = mp.save().to_vec();
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(MpLccsLsh::load(&bad[..], data.clone()), Err(LoadError::BadMagic)));
        // An LCC1 payload is not an MPL1 payload (and vice versa).
        let plain = mp.inner().save().to_vec();
        assert!(matches!(MpLccsLsh::load(&plain[..], data.clone()), Err(LoadError::BadMagic)));
        assert!(matches!(LccsLsh::load(&good[..], data.clone()), Err(LoadError::BadMagic)));
        // Zero probes.
        let mut bad = good.clone();
        bad[4..12].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(MpLccsLsh::load(&bad[..], data.clone()), Err(LoadError::Malformed(_))));
        // Truncations anywhere must fail cleanly.
        for cut in [0usize, 10, 30, good.len() / 2] {
            assert!(MpLccsLsh::load(&good[..cut], data.clone()).is_err());
        }
    }

    #[test]
    fn persist_ann_contract_round_trips() {
        use ann::{AnnIndex, PersistAnn, SearchParams};
        let (data, idx) = build();
        let payload = PersistAnn::snapshot_bytes(&idx);
        let back = <LccsLsh as PersistAnn>::restore(&payload, data.clone()).expect("restore");
        let p = SearchParams::new(5, 64);
        assert_eq!(AnnIndex::query(&idx, data.get(11), &p), AnnIndex::query(&back, data.get(11), &p));
        assert!(matches!(
            <LccsLsh as PersistAnn>::restore(&payload[..8], data.clone()),
            Err(ann::PersistError::Malformed(_))
        ));
        let wrong = Arc::new(SynthSpec::new("w", 400, 64).generate(2));
        assert!(matches!(
            <LccsLsh as PersistAnn>::restore(&payload, wrong),
            Err(ann::PersistError::DatasetMismatch(_))
        ));
    }
}
