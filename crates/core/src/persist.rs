//! Index persistence for LCCS-LSH.
//!
//! The hash functions are trait objects, but every family is sampled
//! deterministically from `(family, dim, m, params, seed)` — so the payload
//! only stores the build parameters, the metric, and the CSA bytes; loading
//! re-samples the identical functions and attaches the caller's dataset.
//! The expensive part (the `O(m n log n)` CSA build plus the `O(n m η(d))`
//! hashing pass) is skipped entirely on load, which is what makes the
//! indexing-time amortization of Figures 6–7 practical across runs.

use crate::index::{LccsLsh, LccsParams};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use csa::Csa;
use dataset::{Dataset, Metric};
use lsh::{sample_family, FamilyKind};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"LCC1";

/// Errors raised when loading a serialized index.
#[derive(Debug)]
pub enum LoadError {
    /// Magic/version mismatch.
    BadMagic,
    /// Payload too short or field out of range.
    Malformed(String),
    /// The CSA section failed to decode.
    Csa(csa::serialize::DecodeError),
    /// The supplied dataset does not match the serialized index shape.
    DatasetMismatch(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "not an LCC1 payload"),
            LoadError::Malformed(m) => write!(f, "malformed index payload: {m}"),
            LoadError::Csa(e) => write!(f, "bad CSA section: {e}"),
            LoadError::DatasetMismatch(m) => write!(f, "dataset mismatch: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

fn metric_tag(m: Metric) -> u8 {
    match m {
        Metric::Euclidean => 0,
        Metric::Angular => 1,
        Metric::Hamming => 2,
        Metric::Jaccard => 3,
    }
}

fn metric_from_tag(t: u8) -> Option<Metric> {
    Some(match t {
        0 => Metric::Euclidean,
        1 => Metric::Angular,
        2 => Metric::Hamming,
        3 => Metric::Jaccard,
        _ => return None,
    })
}

fn family_tag(f: FamilyKind) -> u8 {
    match f {
        FamilyKind::RandomProjection => 0,
        FamilyKind::CrossPolytope => 1,
        FamilyKind::CrossPolytopeFast => 2,
        FamilyKind::BitSampling => 3,
        FamilyKind::MinHash => 4,
    }
}

fn family_from_tag(t: u8) -> Option<FamilyKind> {
    Some(match t {
        0 => FamilyKind::RandomProjection,
        1 => FamilyKind::CrossPolytope,
        2 => FamilyKind::CrossPolytopeFast,
        3 => FamilyKind::BitSampling,
        4 => FamilyKind::MinHash,
        _ => return None,
    })
}

impl LccsLsh {
    /// Serializes the index (parameters + CSA). The dataset itself is *not*
    /// stored; [`LccsLsh::load`] re-attaches it.
    pub fn save(&self) -> Bytes {
        let csa_bytes = self.csa().to_bytes();
        let p = self.params();
        let mut buf = BytesMut::with_capacity(csa_bytes.len() + 64);
        buf.put_slice(MAGIC);
        buf.put_u8(metric_tag(self.metric()));
        buf.put_u8(family_tag(p.family));
        buf.put_u64_le(p.m as u64);
        buf.put_u64_le(p.seed);
        buf.put_f64_le(p.family_params.w);
        buf.put_u64_le(self.data().dim() as u64);
        buf.put_slice(&csa_bytes);
        buf.freeze()
    }

    /// Loads an index saved by [`LccsLsh::save`], re-sampling the hash
    /// functions deterministically and attaching `data` (which must be the
    /// dataset the index was built over — shape is validated, contents are
    /// the caller's responsibility, as with any external index file).
    pub fn load(mut buf: impl Buf, data: Arc<Dataset>) -> Result<LccsLsh, LoadError> {
        if buf.remaining() < 4 + 2 + 8 * 4 {
            return Err(LoadError::Malformed("payload too short".into()));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(LoadError::BadMagic);
        }
        let metric = metric_from_tag(buf.get_u8())
            .ok_or_else(|| LoadError::Malformed("unknown metric tag".into()))?;
        let family = family_from_tag(buf.get_u8())
            .ok_or_else(|| LoadError::Malformed("unknown family tag".into()))?;
        let m = buf.get_u64_le() as usize;
        let seed = buf.get_u64_le();
        let w = buf.get_f64_le();
        let dim = buf.get_u64_le() as usize;
        if dim != data.dim() {
            return Err(LoadError::DatasetMismatch(format!(
                "index built for dim {dim}, dataset has {}",
                data.dim()
            )));
        }
        if !(w.is_finite() && w > 0.0) {
            return Err(LoadError::Malformed(format!("bad bucket width {w}")));
        }
        let csa = Csa::from_bytes(buf).map_err(LoadError::Csa)?;
        if csa.len() != data.len() {
            return Err(LoadError::DatasetMismatch(format!(
                "index holds {} strings, dataset has {} vectors",
                csa.len(),
                data.len()
            )));
        }
        if csa.m() != m {
            return Err(LoadError::Malformed("CSA m disagrees with header".into()));
        }
        let params = LccsParams { m, family, family_params: lsh::FamilyParams { w }, seed };
        let funcs = sample_family(family, dim, m, &params.family_params, seed);
        Ok(LccsLsh::from_parts(data, metric, funcs, csa, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn build() -> (Arc<Dataset>, LccsLsh) {
        let data = Arc::new(SynthSpec::sift_like().with_n(400).generate(3));
        let idx = LccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(30.0).with_m(16).with_seed(77),
        );
        (data, idx)
    }

    #[test]
    fn save_load_round_trip_answers_identically() {
        let (data, idx) = build();
        let payload = idx.save();
        let back = LccsLsh::load(payload, data.clone()).expect("load");
        for i in [0usize, 100, 399] {
            let a = idx.query(data.get(i), 5, 64);
            let b = back.query(data.get(i), 5, 64);
            assert_eq!(
                a.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn load_rejects_wrong_dataset_shape() {
        let (_, idx) = build();
        let payload = idx.save();
        let wrong_dim = Arc::new(SynthSpec::new("x", 400, 64).generate(1));
        assert!(matches!(
            LccsLsh::load(payload.clone(), wrong_dim),
            Err(LoadError::DatasetMismatch(_))
        ));
        let wrong_n = Arc::new(SynthSpec::sift_like().with_n(100).generate(1));
        assert!(matches!(
            LccsLsh::load(payload, wrong_n),
            Err(LoadError::DatasetMismatch(_))
        ));
    }

    #[test]
    fn load_rejects_corrupt_headers() {
        let (data, idx) = build();
        let good = idx.save().to_vec();
        // magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(LccsLsh::load(&bad[..], data.clone()), Err(LoadError::BadMagic)));
        // metric tag
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(LccsLsh::load(&bad[..], data.clone()).is_err());
        // family tag
        let mut bad = good.clone();
        bad[5] = 99;
        assert!(LccsLsh::load(&bad[..], data.clone()).is_err());
        // truncated
        assert!(LccsLsh::load(&good[..10], data).is_err());
    }

    #[test]
    fn angular_index_round_trips() {
        let data = Arc::new(SynthSpec::glove_like().with_n(200).generate(4).normalized());
        let idx = LccsLsh::build(data.clone(), Metric::Angular, &LccsParams::angular().with_m(8));
        let back = LccsLsh::load(idx.save(), data.clone()).unwrap();
        assert_eq!(back.metric(), Metric::Angular);
        let a = idx.query(data.get(7), 3, 32);
        let b = back.query(data.get(7), 3, 32);
        assert_eq!(a.neighbors[0].id, b.neighbors[0].id);
    }
}
