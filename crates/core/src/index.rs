//! Single-probe LCCS-LSH (§4.1).
//!
//! **Indexing**: sample `m` i.i.d. functions from the chosen family, hash
//! every object into a length-`m` string, build the CSA (Algorithm 1).
//!
//! **Query**: hash `q`, run a `(λ + k − 1)`-LCCS search (Algorithm 2) to
//! obtain candidates, verify each candidate's true distance, return the
//! nearest `k` — exactly the two-phase flow of §4.1. The single tuning
//! parameter is `m`; λ trades query time against recall and is the knob the
//! paper's recall/time curves sweep.

use ann::{SearchRequest, SearchResponse, SearchStats};
use csa::{Csa, SearchScratch, StringSet};
use dataset::exact::Neighbor;
use dataset::sq8::Sq8Pruner;
use dataset::{Dataset, Metric};
use lsh::{hash_dataset, hash_query, sample_family, FamilyKind, FamilyParams, LshFunction};
use std::sync::Arc;
use std::time::Instant;

/// Build-time parameters of LCCS-LSH.
#[derive(Debug, Clone)]
pub struct LccsParams {
    /// Hash-string length `m` — the paper's single tuning parameter
    /// (§6.3 sweeps m ∈ {8, 16, …, 512}).
    pub m: usize,
    /// LSH family to draw the `m` functions from.
    pub family: FamilyKind,
    /// Family parameters (bucket width `w` for random projection).
    pub family_params: FamilyParams,
    /// RNG seed for function sampling.
    pub seed: u64,
}

impl LccsParams {
    /// Euclidean setup: random-projection family with bucket width `w`.
    pub fn euclidean(w: f64) -> Self {
        Self {
            m: 128,
            family: FamilyKind::RandomProjection,
            family_params: FamilyParams { w },
            seed: 0x1cc5,
        }
    }

    /// Angular setup: fast cross-polytope family.
    pub fn angular() -> Self {
        Self {
            m: 128,
            family: FamilyKind::CrossPolytopeFast,
            family_params: FamilyParams::default(),
            seed: 0x1cc5,
        }
    }

    /// Hamming setup: bit-sampling family.
    pub fn hamming() -> Self {
        Self {
            m: 128,
            family: FamilyKind::BitSampling,
            family_params: FamilyParams::default(),
            seed: 0x1cc5,
        }
    }

    /// Jaccard setup: MinHash family.
    pub fn jaccard() -> Self {
        Self {
            m: 128,
            family: FamilyKind::MinHash,
            family_params: FamilyParams::default(),
            seed: 0x1cc5,
        }
    }

    /// Overrides `m`.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of one c-k-ANNS query, with the verification count the complexity
/// analysis of §5.2 charges `O(λ d)` for.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The k nearest verified candidates, ascending by true distance.
    pub neighbors: Vec<Neighbor>,
    /// How many distinct candidates were verified (≤ λ + k − 1).
    pub verified: usize,
}

/// Reusable per-query scratch (CSA cursor state + hash-string buffer).
#[derive(Debug)]
pub struct QueryScratch {
    pub(crate) csa: SearchScratch,
    pub(crate) hash: Vec<u64>,
}

/// The single-probe LCCS-LSH index.
pub struct LccsLsh {
    data: Arc<Dataset>,
    metric: Metric,
    funcs: Vec<Box<dyn LshFunction>>,
    csa: Csa,
    params: LccsParams,
}

impl LccsLsh {
    /// Indexing phase (§4.1): hash all of `data` and build the CSA.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `m == 0`.
    pub fn build(data: Arc<Dataset>, metric: Metric, params: &LccsParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.m >= 2, "hash-string length m must be at least 2");
        let funcs =
            sample_family(params.family, data.dim(), params.m, &params.family_params, params.seed);
        let strings = hash_dataset(&funcs, &data);
        let set = StringSet::from_flat(data.len(), params.m, strings);
        let csa = Csa::build(set);
        // Prime the dataset's SQ8 code table so the verification loops
        // can consult its certified skip bound from the first query on.
        // Pure cache: the bound is sound, answers stay bit-identical.
        data.sq8();
        Self { data, metric, funcs, csa, params: params.clone() }
    }

    /// Hash-string length `m`.
    pub fn m(&self) -> usize {
        self.params.m
    }

    /// The metric the index verifies with.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The indexed dataset.
    pub fn data(&self) -> &Arc<Dataset> {
        &self.data
    }

    /// Index footprint in bytes (CSA arrays + hash strings; the raw vectors
    /// are charged to the dataset, as in the paper's index-size metric).
    pub fn index_bytes(&self) -> usize {
        self.csa.nbytes()
    }

    /// Access to the underlying CSA (exposed for MP-LCCS-LSH and tests).
    pub fn csa(&self) -> &Csa {
        &self.csa
    }

    /// The sampled hash functions (exposed for MP-LCCS-LSH).
    pub fn functions(&self) -> &[Box<dyn LshFunction>] {
        &self.funcs
    }

    /// The build parameters.
    pub fn params(&self) -> &LccsParams {
        &self.params
    }

    /// Reassembles an index from previously constructed parts (used by the
    /// persistence layer; the caller guarantees consistency of the parts).
    pub(crate) fn from_parts(
        data: Arc<Dataset>,
        metric: Metric,
        funcs: Vec<Box<dyn LshFunction>>,
        csa: Csa,
        params: LccsParams,
    ) -> Self {
        Self { data, metric, funcs, csa, params }
    }

    /// The `(R, c)`-NNS decision problem (Definition 2.2): returns some
    /// object within distance `c·R` of `q` if one within `R` exists; returns
    /// `None` when nothing within `c·R` is found among the λ candidates.
    /// By Theorem 5.1, with λ set per [`crate::theory::lambda`] the promise
    /// case succeeds with probability ≥ 1/4 per index; callers amplify by
    /// repetition as usual.
    pub fn query_rnn(&self, q: &[f32], radius: f64, c: f64, lambda: usize) -> Option<Neighbor> {
        assert!(radius > 0.0, "radius must be positive");
        assert!(c > 1.0, "approximation ratio must exceed 1");
        let out = self.query(q, 1, lambda);
        out.neighbors.into_iter().next().filter(|n| n.dist <= c * radius)
    }

    /// Fresh scratch for [`LccsLsh::query_with`].
    pub fn scratch(&self) -> QueryScratch {
        QueryScratch { csa: SearchScratch::for_csa(&self.csa), hash: vec![0; self.params.m] }
    }

    /// c-k-ANNS query (§4.1): `(λ + k − 1)`-LCCS search, then verification.
    /// Convenience wrapper allocating fresh scratch.
    pub fn query(&self, q: &[f32], k: usize, lambda: usize) -> QueryOutput {
        let mut scratch = self.scratch();
        self.query_with(q, k, lambda, &mut scratch)
    }

    /// c-k-ANNS query reusing scratch.
    ///
    /// # Panics
    /// Panics if `k == 0` or `q` has the wrong dimension.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        lambda: usize,
        scratch: &mut QueryScratch,
    ) -> QueryOutput {
        assert!(k > 0, "k must be positive");
        assert_eq!(q.len(), self.data.dim(), "query dimension mismatch");
        let budget = lambda.max(1) + k - 1;
        scratch.hash.clear();
        scratch.hash.extend(hash_query(&self.funcs, q));
        let (cands, _anchors) = self.csa.search_with(&scratch.hash, budget, &mut scratch.csa);
        let neighbors = self.verify(q, k, cands.iter().map(|c| c.id));
        QueryOutput { verified: cands.len(), neighbors }
    }

    /// Answers a whole query set in parallel through the workspace batch
    /// executor ([`ann::executor`]): chunked dynamic scheduling, one
    /// scratch per worker, results in query order and identical to
    /// sequential [`LccsLsh::query_with`] calls. The paper's measurements
    /// are single-threaded; this is the deployment path for
    /// throughput-oriented users.
    pub fn query_batch(&self, queries: &Dataset, k: usize, lambda: usize) -> Vec<QueryOutput> {
        assert_eq!(queries.dim(), self.data.dim(), "query dimension mismatch");
        ann::executor::par_map_scratch(
            queries.len(),
            || self.scratch(),
            |i, scratch| self.query_with(queries.get(i), k, lambda, scratch),
        )
    }

    /// The SQ8 skip-bound pruner for `q`, when the dataset carries a
    /// code table covering every row (built eagerly by [`LccsLsh::build`];
    /// absent on datasets restored from pre-SQ8 snapshots, which then
    /// verify pure-f32 exactly as before).
    fn pruner_for(&self, q: &[f32]) -> Option<Sq8Pruner<'_>> {
        let sq = self.data.sq8_if_built()?;
        if sq.rows() != self.data.len() {
            return None;
        }
        sq.pruner(q, self.metric)
    }

    /// Verification phase: exact distances for the candidate ids, keep the
    /// nearest `k` (ascending by distance, ties by id).
    pub(crate) fn verify(
        &self,
        q: &[f32],
        k: usize,
        ids: impl Iterator<Item = u32>,
    ) -> Vec<Neighbor> {
        let mut pruner = self.pruner_for(q);
        let mut heap: std::collections::BinaryHeap<Neighbor> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        for id in ids {
            // SQ8 skip bound: a candidate provably farther than the
            // current k-th distance never pays the full-width scan.
            // The bound is sound, so the answer set is unchanged.
            if heap.len() == k {
                if let Some(p) = pruner.as_mut() {
                    if p.skips(id as usize, heap.peek().expect("non-empty").dist) {
                        continue;
                    }
                }
            }
            // The query dimension is asserted once per query in
            // `query_with`; the per-candidate check stays debug-only.
            let s = self.metric.surrogate_unchecked(self.data.get(id as usize), q);
            let cand = Neighbor { id, dist: s };
            if heap.len() < k {
                heap.push(cand);
            } else if cand < *heap.peek().expect("non-empty") {
                heap.pop();
                heap.push(cand);
            }
        }
        let mut out = heap.into_sorted_vec();
        for n in &mut out {
            n.dist = self.metric.from_surrogate(n.dist);
        }
        out
    }

    /// Verification phase honoring a [`SearchRequest`]'s id filter and
    /// distance threshold *inside* the candidate loop: a candidate the
    /// filter rejects (or whose true distance exceeds `max_dist`) never
    /// consumes a heap slot, so the k matching rows the λ candidates
    /// contain always survive — post-hoc filtering could evict them.
    ///
    /// With no filter and no threshold this is exactly [`LccsLsh::verify`]
    /// (same heap, same tie-breaking), which keeps the plain-top-k wire
    /// path byte-identical to the legacy QUERY path.
    ///
    /// Returns the hits and exact [`SearchStats`] counts (wall time is
    /// filled in by the caller, which owns the whole-query clock).
    pub(crate) fn verify_request(
        &self,
        q: &[f32],
        req: &SearchRequest,
        ids: impl Iterator<Item = u32>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let k = req.k;
        let mut pruner = self.pruner_for(q);
        let mut stats = SearchStats::default();
        let mut heap: std::collections::BinaryHeap<Neighbor> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        for id in ids {
            stats.candidates_scanned += 1;
            if let Some(f) = &req.filter {
                if !f.accepts(id) {
                    continue;
                }
            }
            // SQ8 skip bound (after the filter, before the full-width
            // distance): sound, so hits and counters are unchanged — a
            // skipped candidate was counted as scanned and could never
            // have pushed into the heap.
            if heap.len() == k {
                if let Some(p) = pruner.as_mut() {
                    if p.skips(id as usize, heap.peek().expect("non-empty").dist) {
                        continue;
                    }
                }
            }
            let s = self.metric.surrogate_unchecked(self.data.get(id as usize), q);
            // The threshold is compared on the *true* distance, not the
            // surrogate: converting the threshold into surrogate space
            // could disagree with callers by a rounding ulp.
            if let Some(d) = req.max_dist {
                if self.metric.from_surrogate(s) > d {
                    continue;
                }
            }
            let cand = Neighbor { id, dist: s };
            if heap.len() < k {
                heap.push(cand);
                stats.heap_pushes += 1;
            } else if cand < *heap.peek().expect("non-empty") {
                heap.pop();
                heap.push(cand);
                stats.heap_pushes += 1;
            }
        }
        let mut out = heap.into_sorted_vec();
        for n in &mut out {
            n.dist = self.metric.from_surrogate(n.dist);
        }
        (out, stats)
    }

    /// Answers one [`SearchRequest`]: the usual `(λ + k − 1)`-LCCS search
    /// collects candidates under the budget, then `LccsLsh::verify_request`
    /// applies the filter/threshold inside the verification loop. This is
    /// the implementation behind the scheme's [`ann::AnnIndex::search_with`]
    /// override.
    ///
    /// # Panics
    /// Panics if `req.k == 0` or `q` has the wrong dimension.
    pub fn search_request(
        &self,
        q: &[f32],
        req: &SearchRequest,
        scratch: &mut QueryScratch,
    ) -> SearchResponse {
        assert!(req.k > 0, "k must be positive");
        assert_eq!(q.len(), self.data.dim(), "query dimension mismatch");
        let t0 = Instant::now();
        let budget = req.budget.max(1) + req.k - 1;
        scratch.hash.clear();
        scratch.hash.extend(hash_query(&self.funcs, q));
        let (cands, _anchors) = self.csa.search_with(&scratch.hash, budget, &mut scratch.csa);
        let (hits, mut stats) = self.verify_request(q, req, cands.iter().map(|c| c.id));
        stats.wall_micros = t0.elapsed().as_micros() as u64;
        SearchResponse { hits, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{ExactKnn, SynthSpec};

    fn toy(n: usize, seed: u64) -> Arc<Dataset> {
        Arc::new(SynthSpec::new("toy", n, 24).with_clusters(12).generate(seed))
    }

    #[test]
    fn self_query_returns_self_first() {
        let data = toy(500, 1);
        let idx = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(16));
        for i in [0usize, 100, 499] {
            let out = idx.query(data.get(i), 3, 32);
            assert_eq!(out.neighbors[0].id, i as u32, "exact duplicate must top the list");
            assert!(out.neighbors[0].dist < 1e-6);
        }
    }

    #[test]
    fn neighbors_sorted_ascending() {
        let data = toy(300, 2);
        let idx = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(16));
        let out = idx.query(data.get(5), 10, 64);
        for w in out.neighbors.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert!(out.verified >= out.neighbors.len());
    }

    #[test]
    fn recall_improves_with_lambda() {
        // Statistical sanity: a larger candidate budget cannot hurt recall.
        let data = toy(2000, 3);
        let queries = SynthSpec::new("toy", 2000, 24).with_clusters(12).generate_queries(20, 3);
        let gt = ExactKnn::compute(&data, &queries, 10, Metric::Euclidean);
        let idx = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(32));
        let recall = |lambda: usize| {
            let mut hits = 0usize;
            let mut scratch = idx.scratch();
            for (qi, q) in queries.iter().enumerate() {
                let out = idx.query_with(q, 10, lambda, &mut scratch);
                let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
                hits += out.neighbors.iter().filter(|n| truth.contains(&n.id)).count();
            }
            hits as f64 / (10.0 * queries.len() as f64)
        };
        let lo = recall(4);
        let hi = recall(512);
        assert!(hi >= lo, "recall must not degrade with budget: {lo} -> {hi}");
        assert!(hi > 0.5, "λ=512 on n=2000 clustered data should recall well, got {hi}");
    }

    #[test]
    fn angular_family_works() {
        let data = Arc::new(
            SynthSpec::new("ang", 400, 32).with_clusters(8).generate(4).normalized(),
        );
        let idx = LccsLsh::build(data.clone(), Metric::Angular, &LccsParams::angular().with_m(16));
        let out = idx.query(data.get(7), 5, 64);
        assert_eq!(out.neighbors[0].id, 7);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy(200, 5);
        let p = LccsParams::euclidean(8.0).with_m(16).with_seed(99);
        let a = LccsLsh::build(data.clone(), Metric::Euclidean, &p);
        let b = LccsLsh::build(data.clone(), Metric::Euclidean, &p);
        let qa = a.query(data.get(3), 5, 32);
        let qb = b.query(data.get(3), 5, 32);
        assert_eq!(qa.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
                   qb.neighbors.iter().map(|n| n.id).collect::<Vec<_>>());
    }

    #[test]
    fn index_bytes_scales_with_m() {
        let data = toy(100, 6);
        let small = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(8));
        let large = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(32));
        assert!(large.index_bytes() > 3 * small.index_bytes());
    }

    #[test]
    fn batch_query_matches_sequential() {
        let data = toy(600, 12);
        let idx =
            LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(16));
        let queries = data.sample_queries(23, 8);
        let batch = idx.query_batch(&queries, 5, 32);
        assert_eq!(batch.len(), 23);
        let mut scratch = idx.scratch();
        for (qi, q) in queries.iter().enumerate() {
            let seq = idx.query_with(q, 5, 32, &mut scratch);
            assert_eq!(
                batch[qi].neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
                seq.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
                "query {qi}"
            );
        }
    }

    #[test]
    fn rnn_decision_semantics() {
        let data = toy(800, 11);
        let idx =
            LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(32));
        // Promise case: query = database member, so B(q, R) is non-empty for
        // any R; the answer must be within c·R of q.
        let q = data.get(5);
        let hit = idx.query_rnn(q, 0.5, 2.0, 64).expect("duplicate must be found");
        assert!(hit.dist <= 1.0);
        // Far case: a query far beyond the data returns nothing at tiny R.
        let far = vec![1e6f32; data.dim()];
        assert!(idx.query_rnn(&far, 0.5, 2.0, 64).is_none());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = toy(50, 7);
        let idx = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(8));
        idx.query(data.get(0), 0, 8);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_m_panics() {
        let data = toy(50, 8);
        LccsLsh::build(data, Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(1));
    }
}
