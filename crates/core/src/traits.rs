//! [`AnnIndex`] implementations for the LCCS schemes.
//!
//! The trait's `budget` knob is λ, the paper's single query-time
//! parameter (the recall/time curves of §6 sweep it); `probes` applies
//! only to MP-LCCS-LSH, where it is the perturbation-probe count of §4.2.

use crate::index::{LccsLsh, LccsParams, QueryScratch};
use crate::multiprobe::{MpLccsLsh, MpParams};
use ann::{AnnIndex, BuildAnn, Scratch, SearchParams};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use std::sync::Arc;

impl AnnIndex for LccsLsh {
    fn name(&self) -> &'static str {
        "LCCS-LSH"
    }

    fn index_bytes(&self) -> usize {
        LccsLsh::index_bytes(self)
    }

    fn make_scratch(&self) -> Scratch {
        Scratch::new(self.scratch())
    }

    fn query_with(&self, q: &[f32], p: &SearchParams, scratch: &mut Scratch) -> Vec<Neighbor> {
        let s = scratch.get_valid_with(
            |s: &QueryScratch| s.csa.capacity() == self.data().len(),
            || self.scratch(),
        );
        LccsLsh::query_with(self, q, p.k, p.budget, s).neighbors
    }
}

impl BuildAnn for LccsLsh {
    type Params = LccsParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &LccsParams) -> Self {
        LccsLsh::build(data, metric, params)
    }
}

impl AnnIndex for MpLccsLsh {
    fn name(&self) -> &'static str {
        "MP-LCCS-LSH"
    }

    fn index_bytes(&self) -> usize {
        MpLccsLsh::index_bytes(self)
    }

    fn make_scratch(&self) -> Scratch {
        Scratch::new(self.scratch())
    }

    /// `probes == 0` falls back to the build-time [`MpParams::probes`];
    /// any positive value overrides it per query.
    fn query_with(&self, q: &[f32], p: &SearchParams, scratch: &mut Scratch) -> Vec<Neighbor> {
        let s: &mut QueryScratch = scratch.get_valid_with(
            |s: &QueryScratch| s.csa.capacity() == self.inner().data().len(),
            || self.scratch(),
        );
        if p.probes == 0 {
            MpLccsLsh::query_with(self, q, p.k, p.budget, s).neighbors
        } else {
            self.query_probes(q, p.k, p.budget, p.probes, s).neighbors
        }
    }
}

/// Build parameters of [`MpLccsLsh`] under [`BuildAnn`]: the shared LCCS
/// parameters plus the multi-probe knobs.
#[derive(Debug, Clone)]
pub struct MpBuildParams {
    /// Single-probe index parameters.
    pub lccs: LccsParams,
    /// Multi-probe knobs (default probe count, alternatives per position).
    pub mp: MpParams,
}

impl BuildAnn for MpLccsLsh {
    type Params = MpBuildParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &MpBuildParams) -> Self {
        MpLccsLsh::build(data, metric, &params.lccs, params.mp.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn toy() -> Arc<Dataset> {
        Arc::new(SynthSpec::new("trait-toy", 400, 16).with_clusters(8).generate(3))
    }

    #[test]
    fn trait_query_matches_inherent_query() {
        let data = toy();
        let idx = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(16));
        let dyn_idx: &dyn AnnIndex = &idx;
        let p = SearchParams::new(5, 64);
        for i in [0usize, 123, 399] {
            let a = dyn_idx.query(data.get(i), &p);
            let b = idx.query(data.get(i), 5, 64).neighbors;
            assert_eq!(a, b, "query {i}");
        }
        assert_eq!(dyn_idx.name(), "LCCS-LSH");
        assert_eq!(AnnIndex::index_bytes(dyn_idx), idx.csa().nbytes());
    }

    #[test]
    fn mp_trait_probe_override() {
        let data = toy();
        let mp = MpLccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(8.0).with_m(16),
            MpParams { probes: 4, max_alts: 4 },
        );
        let q = data.get(7);
        let mut s1 = mp.scratch();
        let default_probes = mp.query_with(q, 5, 64, &mut s1).neighbors;
        let via_trait = AnnIndex::query(&mp, q, &SearchParams::new(5, 64));
        assert_eq!(via_trait, default_probes, "probes=0 uses the built-in default");
        let overridden = AnnIndex::query(&mp, q, &SearchParams::new(5, 64).with_probes(9));
        let mut s2 = mp.scratch();
        assert_eq!(overridden, mp.query_probes(q, 5, 64, 9, &mut s2).neighbors);
    }

    #[test]
    fn build_ann_builds() {
        let data = toy();
        let idx = <LccsLsh as BuildAnn>::build_index(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(8.0).with_m(16),
        );
        assert_eq!(idx.m(), 16);
        let mp = <MpLccsLsh as BuildAnn>::build_index(
            data,
            Metric::Euclidean,
            &MpBuildParams {
                lccs: LccsParams::euclidean(8.0).with_m(16),
                mp: MpParams { probes: 2, max_alts: 4 },
            },
        );
        assert_eq!(mp.name(), "MP-LCCS-LSH");
    }
}
