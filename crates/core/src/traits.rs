//! [`AnnIndex`] implementations for the LCCS schemes.
//!
//! The trait's `budget` knob is λ, the paper's single query-time
//! parameter (the recall/time curves of §6 sweep it); `probes` applies
//! only to MP-LCCS-LSH, where it is the perturbation-probe count of §4.2.

use crate::index::{LccsLsh, LccsParams, QueryScratch};
use crate::multiprobe::{MpLccsLsh, MpParams};
use ann::{AnnIndex, BuildAnn, Scratch, SearchParams, SearchRequest, SearchResponse};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use std::sync::Arc;

impl AnnIndex for LccsLsh {
    fn name(&self) -> &'static str {
        "LCCS-LSH"
    }

    fn len(&self) -> usize {
        self.data().len()
    }

    fn index_bytes(&self) -> usize {
        LccsLsh::index_bytes(self)
    }

    fn make_scratch(&self) -> Scratch {
        Scratch::new(self.scratch())
    }

    fn query_with(&self, q: &[f32], p: &SearchParams, scratch: &mut Scratch) -> Vec<Neighbor> {
        let s = scratch.get_valid_with(
            |s: &QueryScratch| s.csa.capacity() == self.data().len(),
            || self.scratch(),
        );
        LccsLsh::query_with(self, q, p.k, p.budget, s).neighbors
    }

    /// Overrides the default post-hoc path: the id filter and distance
    /// threshold are honored *inside* the verification loop (see
    /// [`LccsLsh::search_request`]), so filtered rows never consume heap
    /// slots and the λ budget keeps its meaning under predicates.
    fn search_with(&self, q: &[f32], req: &SearchRequest, scratch: &mut Scratch) -> SearchResponse {
        let s = scratch.get_valid_with(
            |s: &QueryScratch| s.csa.capacity() == self.data().len(),
            || self.scratch(),
        );
        LccsLsh::search_request(self, q, req, s)
    }
}

impl BuildAnn for LccsLsh {
    type Params = LccsParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &LccsParams) -> Self {
        LccsLsh::build(data, metric, params)
    }
}

impl AnnIndex for MpLccsLsh {
    fn name(&self) -> &'static str {
        "MP-LCCS-LSH"
    }

    fn len(&self) -> usize {
        self.inner().data().len()
    }

    fn index_bytes(&self) -> usize {
        MpLccsLsh::index_bytes(self)
    }

    fn make_scratch(&self) -> Scratch {
        Scratch::new(self.scratch())
    }

    /// `probes == 0` falls back to the build-time [`MpParams::probes`];
    /// any positive value overrides it per query.
    fn query_with(&self, q: &[f32], p: &SearchParams, scratch: &mut Scratch) -> Vec<Neighbor> {
        let s: &mut QueryScratch = scratch.get_valid_with(
            |s: &QueryScratch| s.csa.capacity() == self.inner().data().len(),
            || self.scratch(),
        );
        if p.probes == 0 {
            MpLccsLsh::query_with(self, q, p.k, p.budget, s).neighbors
        } else {
            self.query_probes(q, p.k, p.budget, p.probes, s).neighbors
        }
    }

    /// Overrides the default post-hoc path with the probe-sequence search
    /// plus in-loop filtering (see [`MpLccsLsh::search_request`]).
    fn search_with(&self, q: &[f32], req: &SearchRequest, scratch: &mut Scratch) -> SearchResponse {
        let s: &mut QueryScratch = scratch.get_valid_with(
            |s: &QueryScratch| s.csa.capacity() == self.inner().data().len(),
            || self.scratch(),
        );
        MpLccsLsh::search_request(self, q, req, s)
    }
}

/// Build parameters of [`MpLccsLsh`] under [`BuildAnn`]: the shared LCCS
/// parameters plus the multi-probe knobs.
#[derive(Debug, Clone)]
pub struct MpBuildParams {
    /// Single-probe index parameters.
    pub lccs: LccsParams,
    /// Multi-probe knobs (default probe count, alternatives per position).
    pub mp: MpParams,
}

impl BuildAnn for MpLccsLsh {
    type Params = MpBuildParams;

    fn build_index(data: Arc<Dataset>, metric: Metric, params: &MpBuildParams) -> Self {
        MpLccsLsh::build(data, metric, &params.lccs, params.mp.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn toy() -> Arc<Dataset> {
        Arc::new(SynthSpec::new("trait-toy", 400, 16).with_clusters(8).generate(3))
    }

    #[test]
    fn trait_query_matches_inherent_query() {
        let data = toy();
        let idx = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(16));
        let dyn_idx: &dyn AnnIndex = &idx;
        let p = SearchParams::new(5, 64);
        for i in [0usize, 123, 399] {
            let a = dyn_idx.query(data.get(i), &p);
            let b = idx.query(data.get(i), 5, 64).neighbors;
            assert_eq!(a, b, "query {i}");
        }
        assert_eq!(dyn_idx.name(), "LCCS-LSH");
        assert_eq!(AnnIndex::index_bytes(dyn_idx), idx.csa().nbytes());
    }

    #[test]
    fn mp_trait_probe_override() {
        let data = toy();
        let mp = MpLccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(8.0).with_m(16),
            MpParams { probes: 4, max_alts: 4 },
        );
        let q = data.get(7);
        let mut s1 = mp.scratch();
        let default_probes = mp.query_with(q, 5, 64, &mut s1).neighbors;
        let via_trait = AnnIndex::query(&mp, q, &SearchParams::new(5, 64));
        assert_eq!(via_trait, default_probes, "probes=0 uses the built-in default");
        let overridden =
            AnnIndex::query(&mp, q, &SearchRequest::top_k(5).budget(64).probes(9).params());
        let mut s2 = mp.scratch();
        assert_eq!(overridden, mp.query_probes(q, 5, 64, 9, &mut s2).neighbors);
    }

    #[test]
    fn search_without_extras_is_byte_identical_to_query() {
        let data = toy();
        let lccs =
            LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(16));
        let mp = MpLccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(8.0).with_m(16),
            MpParams { probes: 4, max_alts: 4 },
        );
        let req = SearchRequest::top_k(5).budget(64);
        for idx in [&lccs as &dyn AnnIndex, &mp as &dyn AnnIndex] {
            for i in [0usize, 50, 399] {
                let q = data.get(i);
                let resp = idx.search(q, &req);
                assert_eq!(resp.hits, idx.query(q, &req.params()), "{} query {i}", idx.name());
                assert!(resp.stats.candidates_scanned > 0, "stats are collected");
            }
            assert_eq!(idx.len(), 400);
        }
    }

    #[test]
    fn filters_are_honored_inside_the_candidate_loop() {
        let data = toy();
        let idx =
            LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(16));
        let q = data.get(7);
        // Denying the exact-duplicate id must surface the runner-up, and
        // the scanned count must stay the λ-bounded candidate count (the
        // filter runs inside the loop, not as a second query).
        let plain = idx.search(q, &SearchRequest::top_k(5).budget(64));
        assert_eq!(plain.hits[0].id, 7);
        let denied =
            idx.search(q, &SearchRequest::top_k(5).budget(64).filter(ann::IdFilter::deny(vec![7])));
        assert!(denied.hits.iter().all(|h| h.id != 7));
        assert_eq!(denied.stats.candidates_scanned, plain.stats.candidates_scanned);
        // An allowlist answer only ever contains allowed ids.
        let allow: Vec<u32> = (0..400).filter(|i| i % 3 == 0).collect();
        let resp = idx.search(
            q,
            &SearchRequest::top_k(5).budget(256).filter(ann::IdFilter::allow(allow.clone())),
        );
        assert!(!resp.hits.is_empty());
        assert!(resp.hits.iter().all(|h| h.id % 3 == 0));
        // A zero threshold keeps only the exact duplicate.
        let ranged = idx.search(q, &SearchRequest::top_k(5).budget(64).max_dist(0.0));
        assert_eq!(ranged.hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn build_ann_builds() {
        let data = toy();
        let idx = <LccsLsh as BuildAnn>::build_index(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(8.0).with_m(16),
        );
        assert_eq!(idx.m(), 16);
        let mp = <MpLccsLsh as BuildAnn>::build_index(
            data,
            Metric::Euclidean,
            &MpBuildParams {
                lccs: LccsParams::euclidean(8.0).with_m(16),
                mp: MpParams { probes: 2, max_alts: 4 },
            },
        );
        assert_eq!(mp.name(), "MP-LCCS-LSH");
    }
}
