//! **LCCS-LSH** — the paper's primary contribution (§4–§5).
//!
//! The scheme hashes every data object into a length-`m` *hash string*
//! `H(o) = [h_1(o), …, h_m(o)]` using `m` i.i.d. functions from any LSH
//! family, indexes the strings in a [Circular Shift Array](csa), and answers
//! c-k-ANNS queries by retrieving the objects whose hash strings share the
//! longest circular co-substring with `H(q)` — a *dynamic concatenating*
//! search framework: the effective concatenation length adapts per object
//! instead of being fixed to `K` as in E2LSH.
//!
//! * [`index`] — the single-probe scheme (§4.1): indexing + λ-LCCS query.
//! * [`multiprobe`] — MP-LCCS-LSH (§4.2): perturbation-vector generation
//!   (Algorithm 3) with `p_shift`/`p_expand`, gap cap `MAX_GAP`, and the
//!   skip-unaffected-positions probing rule.
//! * [`theory`] — §5: the extreme-value model of `F_{m,p}`, the λ setting of
//!   Theorem 5.1, and the α-parameterized complexity rows of Table 1.
//!
//! ```
//! use dataset::{Metric, SynthSpec};
//! use lccs_lsh::{LccsLsh, LccsParams};
//! use std::sync::Arc;
//!
//! let data = Arc::new(SynthSpec::sift_like().with_n(2000).generate(7));
//! let index = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams {
//!     m: 32,
//!     ..LccsParams::euclidean(8.0)
//! });
//! let out = index.query(data.get(0), 5, 64);
//! assert_eq!(out.neighbors[0].id, 0); // the object itself is its own NN
//! ```
//!
//! Where this crate sits in the workspace is mapped in
//! `docs/architecture.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod multiprobe;
pub mod persist;
pub mod theory;
pub mod traits;

pub use ann::{
    AnnIndex, BuildAnn, IdFilter, Scratch, SearchParams, SearchRequest, SearchResponse,
    SearchStats,
};
pub use index::{LccsLsh, LccsParams, QueryOutput, QueryScratch};
pub use persist::LoadError;
pub use multiprobe::{MpLccsLsh, MpParams, Perturbation, PerturbationGenerator, MAX_GAP};
pub use traits::MpBuildParams;
