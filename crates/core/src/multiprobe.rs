//! MP-LCCS-LSH (§4.2): multi-probe LCCS-LSH.
//!
//! A *perturbation vector* δ is a list of `(position, alternative)` pairs:
//! "replace `h_i(q)` by its j-th alternative". Probing the perturbed hash
//! strings in ascending score order boosts the conceptual number of hash
//! tables without extra memory, exactly like Multi-Probe LSH does for the
//! static concatenating framework.
//!
//! The paper identifies two problems with naively porting Multi-Probe LSH
//! and addresses both:
//!
//! 1. **Skip unaffected positions.** Changing `h_{i}(q)` only changes the
//!    LCP at rotations whose match window reaches position `i`; the anchors
//!    stored during the first λ-LCCS search tell us each rotation's reach,
//!    so a probe re-searches only the affected rotations.
//! 2. **Gap-capped generation** (Algorithm 3). Perturbation vectors whose
//!    modified positions are far apart add only candidates that cheaper
//!    probes already produce, so `p_expand` may only append a position at
//!    most [`MAX_GAP`] after the last one, and vectors are emitted in
//!    ascending score order through a min-heap with the `p_shift` /
//!    `p_expand` successor rules.

use crate::index::{LccsLsh, LccsParams, QueryOutput, QueryScratch};
use dataset::{Dataset, Metric};
use lsh::ScoredAlt;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Maximum gap between adjacent modified positions in a perturbation vector.
/// "We set MAX_GAP = 2 in practice" (§4.2).
pub const MAX_GAP: usize = 2;

/// One perturbation vector: sorted `(position, alternative-index)` pairs
/// plus its inherited score (sum of the member alternatives' scores).
#[derive(Debug, Clone, PartialEq)]
pub struct Perturbation {
    /// Modification list; positions are 0-based and strictly increasing.
    pub mods: Vec<(usize, usize)>,
    /// Total score (smaller = probed earlier).
    pub score: f64,
}

impl Perturbation {
    /// The empty perturbation (the unmodified hash string).
    pub fn empty() -> Self {
        Self { mods: Vec::new(), score: 0.0 }
    }
}

#[derive(Debug)]
struct HeapItem(Perturbation);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.0.score == other.0.score
    }
}
impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by score (BinaryHeap is a max-heap, so reverse), with a
        // deterministic tie-break on the modification lists.
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then_with(|| other.0.mods.cmp(&self.0.mods))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Streaming generator of perturbation vectors (Algorithm 3). Yields the
/// empty perturbation first, then perturbations in ascending score order.
pub struct PerturbationGenerator<'a> {
    alts: &'a [Vec<ScoredAlt>],
    heap: BinaryHeap<HeapItem>,
    emitted_empty: bool,
}

impl<'a> PerturbationGenerator<'a> {
    /// `alts[i]` is the ascending-score alternative list of position `i`
    /// (from [`lsh::LshFunction::alternatives`]).
    pub fn new(alts: &'a [Vec<ScoredAlt>]) -> Self {
        let mut heap = BinaryHeap::new();
        // Lines 3–5: one singleton per position using its first alternative.
        for (i, list) in alts.iter().enumerate() {
            if let Some(a) = list.first() {
                heap.push(HeapItem(Perturbation { mods: vec![(i, 0)], score: a.score }));
            }
        }
        Self { alts, heap, emitted_empty: false }
    }

    /// `p_shift(δ)`: advance the last modification to its next alternative.
    fn p_shift(&self, p: &Perturbation) -> Option<Perturbation> {
        let &(pos, j) = p.mods.last()?;
        let list = &self.alts[pos];
        let next = list.get(j + 1)?;
        let mut mods = p.mods.clone();
        *mods.last_mut().expect("non-empty") = (pos, j + 1);
        Some(Perturbation { mods, score: p.score - list[j].score + next.score })
    }

    /// `p_expand(δ, gap)`: append `(i_e + gap, first alternative)`.
    fn p_expand(&self, p: &Perturbation, gap: usize) -> Option<Perturbation> {
        let &(pos, _) = p.mods.last()?;
        let new_pos = pos + gap;
        let first = self.alts.get(new_pos)?.first()?;
        let mut mods = p.mods.clone();
        mods.push((new_pos, 0));
        Some(Perturbation { mods, score: p.score + first.score })
    }
}

impl Iterator for PerturbationGenerator<'_> {
    type Item = Perturbation;

    fn next(&mut self) -> Option<Perturbation> {
        if !self.emitted_empty {
            self.emitted_empty = true;
            return Some(Perturbation::empty());
        }
        // Lines 6–13 of Algorithm 3.
        let HeapItem(p) = self.heap.pop()?;
        if let Some(s) = self.p_shift(&p) {
            self.heap.push(HeapItem(s));
        }
        for gap in 1..=MAX_GAP {
            if let Some(e) = self.p_expand(&p, gap) {
                self.heap.push(HeapItem(e));
            }
        }
        Some(p)
    }
}

/// Multi-probe parameters.
#[derive(Debug, Clone)]
pub struct MpParams {
    /// Total number of probes, *including* the unperturbed one. The paper
    /// sweeps `#probes ∈ {1, m+1, 2m+1, 4m+1, 8m+1}`; `1` makes the scheme
    /// identical to single-probe LCCS-LSH (§6.4, footnote 13).
    pub probes: usize,
    /// Alternatives fetched per position (depth available to `p_shift`).
    pub max_alts: usize,
}

impl Default for MpParams {
    fn default() -> Self {
        Self { probes: 1, max_alts: 8 }
    }
}

impl MpParams {
    /// `#probes = mult · m + 1`, the paper's sweep points.
    pub fn per_m(mult: usize, m: usize) -> Self {
        Self { probes: mult * m + 1, max_alts: 8 }
    }
}

/// The multi-probe LCCS-LSH index: a [`LccsLsh`] plus probing state.
pub struct MpLccsLsh {
    inner: LccsLsh,
    mp: MpParams,
}

impl MpLccsLsh {
    /// Builds the underlying LCCS-LSH index.
    pub fn build(data: Arc<Dataset>, metric: Metric, params: &LccsParams, mp: MpParams) -> Self {
        assert!(mp.probes >= 1, "need at least the unperturbed probe");
        Self { inner: LccsLsh::build(data, metric, params), mp }
    }

    /// Wraps an existing single-probe index.
    pub fn from_inner(inner: LccsLsh, mp: MpParams) -> Self {
        assert!(mp.probes >= 1, "need at least the unperturbed probe");
        Self { inner, mp }
    }

    /// The wrapped single-probe index.
    pub fn inner(&self) -> &LccsLsh {
        &self.inner
    }

    /// The multi-probe knobs (exposed for the persistence layer).
    pub fn mp_params(&self) -> &MpParams {
        &self.mp
    }

    /// Index footprint (identical to the single-probe index — multi-probe
    /// adds no memory, which is its whole point).
    pub fn index_bytes(&self) -> usize {
        self.inner.index_bytes()
    }

    /// Fresh query scratch.
    pub fn scratch(&self) -> QueryScratch {
        self.inner.scratch()
    }

    /// c-k-ANNS with multi-probing. The candidate budget `λ + k − 1` is
    /// spread evenly over the probe sequence; probing stops as soon as the
    /// budget is filled, so cheap queries never pay for late probes.
    pub fn query(&self, q: &[f32], k: usize, lambda: usize) -> QueryOutput {
        let mut scratch = self.scratch();
        self.query_with(q, k, lambda, &mut scratch)
    }

    /// [`MpLccsLsh::query`] with caller-provided scratch.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        lambda: usize,
        scratch: &mut QueryScratch,
    ) -> QueryOutput {
        self.query_probes(q, k, lambda, self.mp.probes, scratch)
    }

    /// [`MpLccsLsh::query_with`] with a query-time `#probes` override — lets
    /// the harness sweep the Figure 10 probe counts on one built index.
    pub fn query_probes(
        &self,
        q: &[f32],
        k: usize,
        lambda: usize,
        probes: usize,
        scratch: &mut QueryScratch,
    ) -> QueryOutput {
        let cands = self.probe_candidates(q, k, lambda, probes, scratch);
        let neighbors = self.inner.verify(q, k, cands.iter().map(|c| c.id));
        QueryOutput { verified: cands.len(), neighbors }
    }

    /// Answers one [`ann::SearchRequest`]: the probe sequence collects
    /// candidates exactly as [`MpLccsLsh::query_probes`] does (the
    /// request's `probes = 0` falls back to the build-time default), then
    /// the shared filtered verification applies the id filter and the
    /// distance threshold inside the loop. Implementation behind the
    /// scheme's [`ann::AnnIndex::search_with`] override.
    ///
    /// # Panics
    /// Panics if `req.k == 0` or `q` has the wrong dimension.
    pub fn search_request(
        &self,
        q: &[f32],
        req: &ann::SearchRequest,
        scratch: &mut QueryScratch,
    ) -> ann::SearchResponse {
        assert_eq!(q.len(), self.inner.data().dim(), "query dimension mismatch");
        let t0 = std::time::Instant::now();
        let probes = if req.probes == 0 { self.mp.probes } else { req.probes };
        let cands = self.probe_candidates(q, req.k, req.budget, probes, scratch);
        let (hits, mut stats) = self.inner.verify_request(q, req, cands.iter().map(|c| c.id));
        stats.wall_micros = t0.elapsed().as_micros() as u64;
        ann::SearchResponse { hits, stats }
    }

    /// The search phase shared by [`MpLccsLsh::query_probes`] and
    /// [`MpLccsLsh::search_request`]: the unperturbed λ-LCCS probe plus up
    /// to `probes − 1` perturbed probes, stopping once the `λ + k − 1`
    /// budget is filled.
    fn probe_candidates(
        &self,
        q: &[f32],
        k: usize,
        lambda: usize,
        probes: usize,
        scratch: &mut QueryScratch,
    ) -> Vec<csa::Candidate> {
        assert!(k > 0, "k must be positive");
        assert!(probes >= 1, "need at least the unperturbed probe");
        let m = self.inner.m();
        let total_budget = lambda.max(1) + k - 1;
        let per_probe = total_budget.div_ceil(probes).max(1);

        // Probe 1: the unperturbed λ-LCCS search; keep the anchors for the
        // skip-unaffected-positions rule.
        scratch.hash.clear();
        scratch.hash.extend(lsh::hash_query(self.inner.functions(), q));
        let base_hash = scratch.hash.clone();
        let (mut cands, anchors) =
            self.inner.csa().search_with(&base_hash, per_probe, &mut scratch.csa);

        if probes > 1 && cands.len() < total_budget {
            // Alternative hash values per position, ascending by score.
            let alts: Vec<Vec<ScoredAlt>> = self
                .inner
                .functions()
                .iter()
                .map(|f| f.alternatives(q, self.mp.max_alts))
                .collect();
            let mut probe_hash = vec![0u64; m];
            let mut affected: Vec<usize> = Vec::with_capacity(m);
            for p in PerturbationGenerator::new(&alts).skip(1).take(probes - 1) {
                if cands.len() >= total_budget {
                    break;
                }
                // Build the perturbed hash string.
                probe_hash.copy_from_slice(&base_hash);
                for &(pos, j) in &p.mods {
                    probe_hash[pos] = alts[pos][j].symbol;
                }
                // A rotation s is affected iff some modified position falls
                // inside its circular match window [s, s + reach(s)].
                affected.clear();
                for s in 0..m {
                    let reach = anchors.row(s).reach() as usize;
                    let hit = p
                        .mods
                        .iter()
                        .any(|&(pos, _)| (pos + m - s) % m <= reach);
                    if hit {
                        affected.push(s);
                    }
                }
                if affected.is_empty() {
                    continue;
                }
                let budget = per_probe.min(total_budget - cands.len());
                let extra =
                    self.inner.csa().probe_rotations(&probe_hash, &affected, budget, &mut scratch.csa);
                cands.extend(extra);
            }
        }

        cands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::SynthSpec;

    fn alts_for(scores: &[&[f64]]) -> Vec<Vec<ScoredAlt>> {
        scores
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, &s)| ScoredAlt { symbol: 1000 + j as u64, score: s })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn generator_emits_empty_first_then_ascending_scores() {
        let alts = alts_for(&[&[0.1, 0.5], &[0.2, 0.9], &[0.3, 0.4]]);
        let gen = PerturbationGenerator::new(&alts);
        let seq: Vec<Perturbation> = gen.take(12).collect();
        assert!(seq[0].mods.is_empty(), "first probe is the unmodified string");
        for w in seq[1..].windows(2) {
            assert!(w[0].score <= w[1].score + 1e-12, "{w:?}");
        }
    }

    #[test]
    fn generator_respects_max_gap() {
        let alts = alts_for(&[&[0.1], &[0.1], &[0.1], &[0.1], &[0.1], &[0.1]]);
        for p in PerturbationGenerator::new(&alts).take(64) {
            for pair in p.mods.windows(2) {
                assert!(pair[1].0 - pair[0].0 <= MAX_GAP, "gap violated: {:?}", p.mods);
            }
        }
    }

    #[test]
    fn generator_never_repeats() {
        let alts = alts_for(&[&[0.1, 0.2], &[0.15, 0.3], &[0.12, 0.25], &[0.4]]);
        let seq: Vec<Vec<(usize, usize)>> =
            PerturbationGenerator::new(&alts).take(40).map(|p| p.mods).collect();
        let mut dedup = seq.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), seq.len(), "duplicate perturbation generated");
    }

    #[test]
    fn generator_scores_are_sums() {
        let alts = alts_for(&[&[0.1, 0.5], &[0.2]]);
        for p in PerturbationGenerator::new(&alts).take(10) {
            let want: f64 = p.mods.iter().map(|&(i, j)| alts[i][j].score).sum();
            assert!((p.score - want).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_and_expand_definitions() {
        // δ = {(1, alt0)}; p_shift → {(1, alt1)}; p_expand(δ, 2) → {(1,0),(3,0)}.
        let alts = alts_for(&[&[0.1, 0.2], &[0.1, 0.2], &[0.1], &[0.3]]);
        let gen = PerturbationGenerator::new(&alts);
        let d = Perturbation { mods: vec![(1, 0)], score: 0.1 };
        let s = gen.p_shift(&d).unwrap();
        assert_eq!(s.mods, vec![(1, 1)]);
        assert!((s.score - 0.2).abs() < 1e-12);
        let e = gen.p_expand(&d, 2).unwrap();
        assert_eq!(e.mods, vec![(1, 0), (3, 0)]);
        assert!((e.score - 0.4).abs() < 1e-12);
        assert!(gen.p_expand(&d, 3).is_none(), "expansion past m is rejected");
    }

    fn toy(n: usize, seed: u64) -> Arc<Dataset> {
        Arc::new(SynthSpec::new("toy", n, 24).with_clusters(12).generate(seed))
    }

    #[test]
    fn single_probe_equals_lccs_lsh() {
        // Footnote 13: MP-LCCS-LSH with #probes = 1 is LCCS-LSH.
        let data = toy(400, 1);
        let params = LccsParams::euclidean(8.0).with_m(16);
        let single = LccsLsh::build(data.clone(), Metric::Euclidean, &params);
        let mp = MpLccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &params,
            MpParams { probes: 1, max_alts: 8 },
        );
        for i in [0usize, 13, 200] {
            let a = single.query(data.get(i), 5, 32);
            let b = mp.query(data.get(i), 5, 32);
            assert_eq!(
                a.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn probing_finds_self_with_tiny_budget() {
        let data = toy(800, 2);
        let params = LccsParams::euclidean(8.0).with_m(16);
        let mp = MpLccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &params,
            MpParams { probes: 33, max_alts: 8 },
        );
        let out = mp.query(data.get(42), 1, 8);
        assert_eq!(out.neighbors[0].id, 42);
    }

    #[test]
    fn more_probes_do_not_reduce_verified_below_budget_fill() {
        let data = toy(600, 3);
        let params = LccsParams::euclidean(8.0).with_m(16);
        let one = MpLccsLsh::build(data.clone(), Metric::Euclidean, &params, MpParams::default());
        let many = MpLccsLsh::build(
            data.clone(),
            Metric::Euclidean,
            &params,
            MpParams { probes: 17, max_alts: 8 },
        );
        let a = one.query(data.get(9), 10, 64);
        let b = many.query(data.get(9), 10, 64);
        // Both fill (λ + k − 1) candidates on this easy workload.
        assert_eq!(a.verified, 73);
        assert!(b.verified <= 73);
        assert!(b.neighbors[0].dist <= a.neighbors[0].dist + 1e-9);
    }

    #[test]
    fn multiprobe_angular() {
        let data = Arc::new(
            SynthSpec::new("ang", 300, 16).with_clusters(6).generate(4).normalized(),
        );
        let mp = MpLccsLsh::build(
            data.clone(),
            Metric::Angular,
            &LccsParams::angular().with_m(16),
            MpParams { probes: 17, max_alts: 8 },
        );
        let out = mp.query(data.get(5), 3, 16);
        // With a 2-candidate-per-probe budget and heavy hash-string ties on
        // tight clusters, the top hit may be a same-cluster near-duplicate
        // rather than the object itself — assert the distance, not the id.
        assert!(
            out.neighbors[0].dist < 0.3,
            "top hit must come from the query's own cluster, got {}",
            out.neighbors[0].dist
        );
    }

    #[test]
    fn per_m_params() {
        let p = MpParams::per_m(2, 64);
        assert_eq!(p.probes, 129);
    }
}
