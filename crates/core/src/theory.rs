//! Theoretical analysis (§5): the extreme-value model of the LCCS length
//! distribution, the λ setting of Theorem 5.1, and the α-parameterized
//! complexity rows of Table 1.

use lsh::prob::rho;

/// Lemma 5.2's limiting CDF: `F̂_p(x) = exp(−p^x)` shifted by
/// `log_{1/p}(m(1−p))`, i.e.
/// `F_{m,p}(x) ≈ exp(−p^{x − log_{1/p}(m(1−p))})` — the Gumbel-type law of
/// the longest head run in `m` coin tosses with `Pr[head] = p`
/// (Gordon–Schilling–Waterman).
///
/// # Panics
/// Panics unless `0 < p < 1` and `m ≥ 1`.
pub fn lccs_len_cdf(m: usize, p: f64, x: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must lie in (0,1)");
    assert!(m >= 1);
    let shift = (m as f64 * (1.0 - p)).ln() / (1.0 / p).ln(); // log_{1/p}(m(1-p))
    (-p.powf(x - shift)).exp()
}

/// Eq. (6): the median of `F̂_{m,p}`,
/// `x_{1/2,p} = log_p(ln 2) + log_{1/p}(m(1−p))`.
pub fn median_lccs_len(m: usize, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    let lnp = p.ln();
    (2.0f64.ln()).ln() / lnp + (m as f64 * (1.0 - p)).ln() / -lnp
}

/// Eq. (7): the `(1 − k/n)` quantile of `F̂_{m,p}`,
/// `x_{1−k/n,p} = log_p(−ln(1 − k/n)) + log_{1/p}(m(1−p))`.
///
/// # Panics
/// Panics unless `0 < k < n`.
pub fn quantile_lccs_len(m: usize, p: f64, k: usize, n: usize) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    assert!(k > 0 && k < n, "need 0 < k < n");
    let lnp = p.ln();
    let q = -(1.0 - k as f64 / n as f64).ln();
    q.ln() / lnp + (m as f64 * (1.0 - p)).ln() / -lnp
}

/// Theorem 5.1's λ:
/// `λ = m^{1−1/ρ} · n · (1−p₁)^{−1/ρ} · (1−p₂) · (ln 2)^{1/ρ} / p₂`,
/// the candidate budget for which the λ-LCCS search answers `(R, c)`-NNS
/// with probability ≥ 1/4. Clamped to `[1, n]`.
///
/// # Panics
/// Panics unless `0 < p2 < p1 < 1` and `m, n ≥ 1`.
pub fn lambda(m: usize, n: usize, p1: f64, p2: f64) -> usize {
    assert!(m >= 1 && n >= 1);
    let r = rho(p1, p2);
    let v = (m as f64).powf(1.0 - 1.0 / r)
        * n as f64
        * (1.0 - p1).powf(-1.0 / r)
        * (1.0 - p2)
        * (2.0f64.ln()).powf(1.0 / r)
        / p2;
    (v.ceil() as usize).clamp(1, n)
}

/// One row of Table 1: asymptotic space/time complexities of LCCS-LSH under
/// a given α (`m = Θ(n^{αρ})`, Corollary 5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexityRow {
    /// The α knob (0 ⇒ linear-scan-like, 1 ⇒ E2LSH-like space, 1/(1−ρ) ⇒
    /// constant candidates).
    pub alpha: f64,
    /// Exponent of n in `m` (= αρ).
    pub m_exponent: f64,
    /// Exponent of n in `λ` (= α(ρ−1) + 1).
    pub lambda_exponent: f64,
    /// Exponent of n in the space complexity (= 1 + αρ).
    pub space_exponent: f64,
}

/// Computes the Table 1 row for a given α and hash quality ρ.
///
/// # Panics
/// Panics unless `0 < ρ < 1` and `0 ≤ α ≤ 1/(1−ρ)`.
pub fn complexity_row(alpha: f64, rho_val: f64) -> ComplexityRow {
    assert!(rho_val > 0.0 && rho_val < 1.0, "rho must be in (0,1)");
    let alpha_max = 1.0 / (1.0 - rho_val);
    assert!(
        (0.0..=alpha_max + 1e-9).contains(&alpha),
        "alpha must be in [0, 1/(1-rho) = {alpha_max}]"
    );
    ComplexityRow {
        alpha,
        m_exponent: alpha * rho_val,
        lambda_exponent: alpha * (rho_val - 1.0) + 1.0,
        space_exponent: 1.0 + alpha * rho_val,
    }
}

/// The three canonical α settings of Table 1: 0, 1, and 1/(1−ρ).
pub fn table1_rows(rho_val: f64) -> [ComplexityRow; 3] {
    [
        complexity_row(0.0, rho_val),
        complexity_row(1.0, rho_val),
        complexity_row(1.0 / (1.0 - rho_val), rho_val),
    ]
}

/// Empirically samples `|LCCS(T, Q)|` for random strings with i.i.d.
/// per-position collision probability `p` (test/bench helper for validating
/// Lemma 5.2's approximation).
pub fn sample_lccs_lengths(m: usize, p: f64, samples: usize, seed: u64) -> Vec<usize> {
    assert!(p > 0.0 && p < 1.0);
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next_f = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..samples)
        .map(|_| {
            // T and Q agree at position i independently w.p. p: encode the
            // agreement pattern directly and measure the longest circular
            // run of agreements (capped at m).
            let agree: Vec<bool> = (0..m).map(|_| next_f() < p).collect();
            if agree.iter().all(|&a| a) {
                return m;
            }
            // longest circular run of `true`
            let mut best = 0usize;
            let mut cur = 0usize;
            for &a in agree.iter().chain(agree.iter()) {
                if a {
                    cur += 1;
                    best = best.max(cur);
                } else {
                    cur = 0;
                }
            }
            best.min(m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 0..60 {
            let x = i as f64 * 0.5;
            let f = lccs_len_cdf(128, 0.5, x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev - 1e-12);
            prev = f;
        }
    }

    #[test]
    fn cdf_decreases_with_p() {
        // F_{m,p}(x) decreases monotonically as p increases (§5.1): higher
        // collision probability ⇒ longer runs ⇒ less mass below x.
        let f_lo = lccs_len_cdf(128, 0.3, 6.0);
        let f_hi = lccs_len_cdf(128, 0.7, 6.0);
        assert!(f_lo > f_hi);
    }

    #[test]
    fn median_matches_cdf_half() {
        for (m, p) in [(64usize, 0.5f64), (256, 0.7), (512, 0.3)] {
            let med = median_lccs_len(m, p);
            let f = lccs_len_cdf(m, p, med);
            assert!((f - 0.5).abs() < 1e-9, "median of F̂ must sit at 1/2, got {f}");
        }
    }

    #[test]
    fn quantile_matches_cdf() {
        let (m, p, k, n) = (128usize, 0.6f64, 10usize, 10_000usize);
        let x = quantile_lccs_len(m, p, k, n);
        let f = lccs_len_cdf(m, p, x);
        assert!((f - (1.0 - k as f64 / n as f64)).abs() < 1e-9);
    }

    #[test]
    fn empirical_median_close_to_model() {
        // Lemma 5.2: for large m the longest circular agreement run follows
        // the shifted Gumbel law; check the empirical median is within ±1.5
        // symbols of Eq. (6).
        let (m, p) = (512usize, 0.5f64);
        let mut lens = sample_lccs_lengths(m, p, 4001, 7);
        lens.sort_unstable();
        let emp_median = lens[lens.len() / 2] as f64;
        let model = median_lccs_len(m, p);
        assert!(
            (emp_median - model).abs() < 1.5,
            "empirical {emp_median} vs model {model}"
        );
    }

    #[test]
    fn lambda_shrinks_with_m() {
        // Theorem 5.1: λ ∝ m^{1−1/ρ} with 1−1/ρ < 0, so larger m ⇒ fewer
        // candidates to verify.
        let (p1, p2) = (0.9, 0.5);
        let l_small = lambda(8, 100_000, p1, p2);
        let l_big = lambda(512, 100_000, p1, p2);
        assert!(l_big < l_small, "λ(8)={l_small} vs λ(512)={l_big}");
    }

    #[test]
    fn lambda_clamped_to_n() {
        assert_eq!(lambda(2, 10, 0.9, 0.889), 10);
        assert!(lambda(1 << 20, 1000, 0.9, 0.2) >= 1);
    }

    #[test]
    fn table1_alpha_zero_is_linear_scan() {
        let rows = table1_rows(0.5);
        let r0 = &rows[0];
        assert_eq!(r0.m_exponent, 0.0); // m = O(1)
        assert_eq!(r0.lambda_exponent, 1.0); // λ = O(n)
        assert_eq!(r0.space_exponent, 1.0); // space O(n)
    }

    #[test]
    fn table1_alpha_one_matches_e2lsh_space() {
        let rho_val = 0.5;
        let r1 = &table1_rows(rho_val)[1];
        assert!((r1.m_exponent - rho_val).abs() < 1e-12); // m = O(n^ρ)
        assert!((r1.lambda_exponent - rho_val).abs() < 1e-12); // λ = O(n^ρ)
        assert!((r1.space_exponent - (1.0 + rho_val)).abs() < 1e-12); // O(n^{1+ρ})
    }

    #[test]
    fn table1_alpha_max_gives_constant_lambda() {
        let rho_val = 0.4;
        let r2 = &table1_rows(rho_val)[2];
        assert!(r2.lambda_exponent.abs() < 1e-12, "λ = O(1) at α = 1/(1−ρ)");
        // space O(n^{1/(1−ρ)})
        assert!((r2.space_exponent - 1.0 / (1.0 - rho_val)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn alpha_beyond_max_panics() {
        complexity_row(10.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "need 0 < k < n")]
    fn bad_quantile_panics() {
        quantile_lccs_len(8, 0.5, 5, 5);
    }
}
