//! Workspace-wide observability: structured leveled logging, request
//! tracing, and a metrics registry with Prometheus text exposition.
//!
//! Three concerns, one zero-dependency crate (no registry deps — this
//! workspace builds fully offline):
//!
//! * [`mod@log`]: leveled structured events to stderr, in logfmt
//!   (`level=info msg="listening" addr=…`) or JSON, gated by a
//!   process-global level. The serving binaries route every diagnostic
//!   line through this instead of bare `eprintln!`, so every event
//!   carries its connection / request / index fields.
//! * [`trace`]: a [`TraceContext`] — `(trace_id, span_id)` pair — minted
//!   at the serving edge and propagated over the wire, plus
//!   [`SpanRecord`] trees the router assembles for slow-query logs
//!   (per-shard queue wait, connect, downstream RTT, merge).
//! * [`metrics`]: process-global counters / gauges / log2 histograms
//!   (the generalization of the serving layer's `IndexStats` bucket
//!   scheme) rendered in Prometheus text format through [`PromText`].
//!   The hot path touches only relaxed atomics; registration is the
//!   only lock.
//!
//! Everything is deliberately `std`-only and cheap enough to leave on:
//! the serving bench pins instrumented search within 5% of the
//! uninstrumented baseline (`BENCH_serve.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod trace;

pub use crate::log::{enabled, log, set_level, set_log_json, Level};
pub use crate::metrics::{
    bucket_index, bucket_upper, global, hist_quantile, Counter, Gauge, Histogram, PromText,
    Registry, HIST_BUCKETS,
};
pub use crate::trace::{SpanRecord, TraceContext};

use std::sync::atomic::{AtomicU64, Ordering};

/// Slow-query threshold in microseconds; `0` disables slow-query logs.
static SLOW_QUERY_MICROS: AtomicU64 = AtomicU64::new(0);

/// Sets the process-global slow-query threshold (`0` turns the slow
/// query log off). The serving binaries wire `--slow-query-ms` here.
pub fn set_slow_query_micros(micros: u64) {
    SLOW_QUERY_MICROS.store(micros, Ordering::Relaxed);
}

/// The current slow-query threshold in microseconds (`0` = off).
pub fn slow_query_micros() -> u64 {
    SLOW_QUERY_MICROS.load(Ordering::Relaxed)
}

/// Whether a request that took `micros` qualifies for the slow-query
/// log (false whenever the threshold is unset).
pub fn is_slow(micros: u64) -> bool {
    let t = slow_query_micros();
    t > 0 && micros >= t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_query_threshold_gates() {
        set_slow_query_micros(0);
        assert!(!is_slow(u64::MAX), "0 disables the slow-query log");
        set_slow_query_micros(1000);
        assert!(!is_slow(999));
        assert!(is_slow(1000));
        assert!(is_slow(5000));
        set_slow_query_micros(0);
    }
}
