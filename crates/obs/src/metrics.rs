//! Process-global metrics: counters, gauges, and log2 histograms with
//! Prometheus text exposition.
//!
//! The histogram bucket scheme is the serving layer's proven one
//! (generalized out of `serve::stats`): bucket `i` counts samples in
//! `[2^i, 2^(i+1))`, bucket 0 absorbs zero, the last bucket is
//! open-ended. [`hist_quantile`] estimates quantiles as bucket upper
//! bounds — deterministic and exact to within a factor of two.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones over relaxed atomics: registration takes the registry lock
//! once, the hot path never does. [`PromText`] renders everything in
//! Prometheus text format (`# HELP` / `# TYPE` headers emitted once per
//! metric name), which is also what callers use to append samples of
//! their own that live outside the registry.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Buckets in a log2 histogram: bucket `i` counts samples whose value
/// fell in `[2^i, 2^(i+1))` (bucket 0 also absorbs zero, the last
/// bucket is open-ended at ~134M — beyond any latency in microseconds
/// this workspace can observe under its 30 s read timeout).
pub const HIST_BUCKETS: usize = 28;

/// Histogram bucket for a value: `floor(log2(value))`, clamped to the
/// bucket range.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (63 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Upper bound of bucket `i`: `2^(i+1) - 1`.
pub fn bucket_upper(i: usize) -> u64 {
    (1u64 << (i + 1)) - 1
}

/// Estimates a quantile (`q` in `[0, 1]`) from a log2 histogram,
/// returning the *upper bound* of the bucket holding the q-th sample —
/// deterministic and slightly pessimistic, exact to within a factor of
/// two. Returns 0 for an empty histogram.
pub fn hist_quantile(hist: &[u64], q: f64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    // Rank of the q-th sample, 1-based, clamped into [1, total].
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return bucket_upper(i);
        }
    }
    unreachable!("rank {rank} exceeds histogram total {total}");
}

/// A monotone counter handle. Clones share the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone counter not attached to any registry.
    pub fn unregistered() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle. Clones share the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A standalone gauge not attached to any registry.
    pub fn unregistered() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

/// A log2 histogram handle. Clones share the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCells>);

impl Histogram {
    /// A standalone histogram not attached to any registry.
    pub fn unregistered() -> Histogram {
        Histogram(Arc::new(HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// `(per-bucket counts, sum of samples)` at this instant.
    pub fn snapshot(&self) -> (Vec<u64>, u64) {
        let buckets = self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        (buckets, self.0.sum.load(Ordering::Relaxed))
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

#[derive(Debug, Clone)]
enum Value {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: &'static str,
    labels: Vec<(String, String)>,
    value: Value,
}

/// A named collection of metrics. Most callers want the process-global
/// [`global`] registry; separate instances exist for tests.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        mk: impl FnOnce() -> Value,
    ) -> Value {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels.len() == labels.len()
                && e.labels.iter().zip(labels).all(|(a, b)| a.0 == b.0 && a.1 == b.1))
        {
            return e.value.clone();
        }
        let value = mk();
        entries.push(Entry {
            name: name.to_string(),
            help,
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            value: value.clone(),
        });
        value
    }

    /// The counter registered under `(name, labels)`, created on first
    /// use. Panics if the series was registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Counter {
        match self.get_or_insert(name, labels, help, || Value::Counter(Counter::unregistered())) {
            Value::Counter(c) => c,
            other => panic!("{name} is registered as a {}", other.kind()),
        }
    }

    /// The gauge registered under `(name, labels)`, created on first
    /// use. Panics if the series was registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Gauge {
        match self.get_or_insert(name, labels, help, || Value::Gauge(Gauge::unregistered())) {
            Value::Gauge(g) => g,
            other => panic!("{name} is registered as a {}", other.kind()),
        }
    }

    /// The histogram registered under `(name, labels)`, created on
    /// first use. Panics if the series was registered as a different
    /// kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Histogram {
        match self.get_or_insert(name, labels, help, || Value::Histogram(Histogram::unregistered()))
        {
            Value::Histogram(h) => h,
            other => panic!("{name} is registered as a {}", other.kind()),
        }
    }

    /// Renders every registered series into `out`, grouped by metric
    /// name in registration order.
    pub fn render_into(&self, out: &mut PromText) {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut done: BTreeSet<&str> = BTreeSet::new();
        for e in entries.iter() {
            if !done.insert(&e.name) {
                continue;
            }
            out.header(&e.name, e.value.kind(), e.help);
            for s in entries.iter().filter(|s| s.name == e.name) {
                let labels: Vec<(&str, &str)> =
                    s.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                match &s.value {
                    Value::Counter(c) => out.sample(&s.name, &labels, c.get()),
                    Value::Gauge(g) => out.sample(&s.name, &labels, g.get()),
                    Value::Histogram(h) => {
                        let (buckets, sum) = h.snapshot();
                        out.histogram_samples(&s.name, &labels, &buckets, sum);
                    }
                }
            }
        }
    }
}

/// The process-global registry the serving layer records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Prometheus text-format assembler: `# HELP`/`# TYPE` headers emitted
/// once per metric name, samples appended with escaped label values.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
    typed: BTreeSet<String>,
}

fn push_label_set(buf: &mut String, labels: &[(&str, &str)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    buf.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            buf.push(',');
        }
        first = false;
        buf.push_str(k);
        buf.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => buf.push_str("\\\\"),
                '"' => buf.push_str("\\\""),
                '\n' => buf.push_str("\\n"),
                c => buf.push(c),
            }
        }
        buf.push('"');
    }
    if let Some(le) = le {
        if !first {
            buf.push(',');
        }
        buf.push_str("le=\"");
        buf.push_str(le);
        buf.push('"');
    }
    buf.push('}');
}

impl PromText {
    /// An empty document.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emits the `# HELP` / `# TYPE` header for `name` once; later calls
    /// for the same name are no-ops, so interleaved producers stay valid.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        if !self.typed.insert(name.to_string()) {
            return;
        }
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// Appends one sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.buf.push_str(name);
        push_label_set(&mut self.buf, labels, None);
        let _ = writeln!(self.buf, " {value}");
    }

    /// Appends the cumulative `_bucket`/`_sum`/`_count` series of one
    /// log2 histogram (`buckets` are per-bucket counts, not cumulative;
    /// `sum` is the sum of raw samples).
    pub fn histogram_samples(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        buckets: &[u64],
        sum: u64,
    ) {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (i, &count) in buckets.iter().enumerate() {
            cumulative += count;
            self.buf.push_str(&bucket_name);
            push_label_set(&mut self.buf, labels, Some(&bucket_upper(i).to_string()));
            let _ = writeln!(self.buf, " {cumulative}");
        }
        self.buf.push_str(&bucket_name);
        push_label_set(&mut self.buf, labels, Some("+Inf"));
        let _ = writeln!(self.buf, " {cumulative}");
        self.sample(&format!("{name}_sum"), labels, sum);
        self.sample(&format!("{name}_count"), labels, cumulative);
    }

    /// The assembled document.
    pub fn into_string(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_absorbed() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(9), 1023);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        assert_eq!(hist_quantile(&[], 0.5), 0);
        let mut h = vec![0u64; HIST_BUCKETS];
        h[0] = 100;
        h[20] = 1;
        assert_eq!(hist_quantile(&h, 0.5), 1);
        assert_eq!(hist_quantile(&h, 0.99), 1);
        assert_eq!(hist_quantile(&h, 1.0), (1 << 21) - 1);
    }

    #[test]
    fn handles_share_state_through_the_registry() {
        let r = Registry::new();
        let a = r.counter("reqs_total", &[("op", "query")], "requests");
        let b = r.counter("reqs_total", &[("op", "query")], "requests");
        let other = r.counter("reqs_total", &[("op", "batch")], "requests");
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3, "same (name, labels) resolves to the same cell");
        assert_eq!(other.get(), 1, "different labels are a different series");

        let g = r.gauge("rows", &[], "rows");
        g.set(7);
        g.set(5);
        assert_eq!(r.gauge("rows", &[], "rows").get(), 5);

        let h = r.histogram("lat", &[], "latency");
        h.observe(3);
        h.observe(900);
        let (buckets, sum) = r.histogram("lat", &[], "latency").snapshot();
        assert_eq!(sum, 903);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[9], 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn render_groups_by_name_with_single_headers() {
        let r = Registry::new();
        r.counter("reqs_total", &[("op", "query")], "requests served").inc();
        r.counter("reqs_total", &[("op", "batch")], "requests served").add(4);
        r.gauge("segments", &[("index", "lv")], "sealed segments").set(3);
        let mut out = PromText::new();
        r.render_into(&mut out);
        let text = out.into_string();
        assert_eq!(text.matches("# TYPE reqs_total counter").count(), 1);
        assert!(text.contains("# HELP reqs_total requests served\n"));
        assert!(text.contains("reqs_total{op=\"query\"} 1\n"));
        assert!(text.contains("reqs_total{op=\"batch\"} 4\n"));
        assert!(text.contains("# TYPE segments gauge\n"));
        assert!(text.contains("segments{index=\"lv\"} 3\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_us", &[("index", "x")], "latency");
        h.observe(0); // bucket 0
        h.observe(3); // bucket 1
        h.observe(3); // bucket 1
        let mut out = PromText::new();
        r.render_into(&mut out);
        let text = out.into_string();
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{index=\"x\",le=\"1\"} 1\n"));
        assert!(text.contains("lat_us_bucket{index=\"x\",le=\"3\"} 3\n"));
        assert!(text.contains("lat_us_bucket{index=\"x\",le=\"7\"} 3\n"), "cumulative from here");
        assert!(text.contains("lat_us_bucket{index=\"x\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_us_sum{index=\"x\"} 6\n"));
        assert!(text.contains("lat_us_count{index=\"x\"} 3\n"));
    }

    #[test]
    fn label_values_escape() {
        let mut out = PromText::new();
        out.sample("m", &[("spec", "a\"b\\c")], 1);
        assert_eq!(out.into_string(), "m{spec=\"a\\\"b\\\\c\"} 1\n");
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("obs_test_global_total", &[], "test counter");
        c.inc();
        assert!(global().counter("obs_test_global_total", &[], "test counter").get() >= 1);
    }
}
