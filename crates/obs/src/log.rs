//! Structured leveled logging to stderr.
//!
//! One event = a level, a message, and a list of `key=value` fields.
//! The default rendering is logfmt (`ts=… level=info msg="listening"
//! addr=127.0.0.1:7700`); [`set_log_json`] switches to one JSON object
//! per line for machine consumers. Both forms write a whole line with a
//! single `write_all`, so concurrent connections never interleave
//! mid-line.

use std::fmt::Display;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Log severity, ordered `Error < Warn < Info < Debug` by verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process is losing data or refusing service.
    Error = 0,
    /// Something degraded but the process keeps serving.
    Warn = 1,
    /// Lifecycle events: startup, shutdown, installs, slow queries.
    Info = 2,
    /// Per-connection / per-request detail.
    Debug = 3,
}

impl Level {
    /// The lowercase name logfmt/JSON lines carry.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s {
            "error" => Ok(Level::Error),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("unknown log level {other:?} (error|warn|info|debug)")),
        }
    }
}

/// Current max verbosity (default: info).
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
/// Whether lines render as JSON objects instead of logfmt.
static JSON: AtomicBool = AtomicBool::new(false);

/// Sets the process-global maximum verbosity.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Switches line rendering between logfmt (`false`, default) and JSON.
pub fn set_log_json(json: bool) {
    JSON.store(json, Ordering::Relaxed);
}

/// Whether events at `level` are currently emitted — the cheap guard the
/// logging macros check before formatting anything.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Microseconds since the Unix epoch (0 if the clock is before it).
fn epoch_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Quotes a logfmt value when it contains whitespace, quotes, or `=`.
fn push_logfmt_value(out: &mut String, value: &str) {
    let needs_quotes =
        value.is_empty() || value.chars().any(|c| c.is_whitespace() || c == '"' || c == '=');
    if !needs_quotes {
        out.push_str(value);
        return;
    }
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON string escaping (quotes, backslash, control characters).
fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one event to a line (no trailing newline).
fn render(json: bool, ts: u64, level: Level, msg: &str, fields: &[(&str, &dyn Display)]) -> String {
    let mut out = String::with_capacity(64 + 16 * fields.len());
    if json {
        out.push_str("{\"ts\":");
        out.push_str(&ts.to_string());
        out.push_str(",\"level\":\"");
        out.push_str(level.as_str());
        out.push_str("\",\"msg\":");
        push_json_string(&mut out, msg);
        for (k, v) in fields {
            out.push(',');
            push_json_string(&mut out, k);
            out.push(':');
            push_json_string(&mut out, &v.to_string());
        }
        out.push('}');
    } else {
        out.push_str("ts=");
        out.push_str(&ts.to_string());
        out.push_str(" level=");
        out.push_str(level.as_str());
        out.push_str(" msg=");
        push_logfmt_value(&mut out, msg);
        for (k, v) in fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            push_logfmt_value(&mut out, &v.to_string());
        }
    }
    out
}

/// Emits one structured event to stderr if `level` is enabled. Prefer
/// the [`error!`](crate::error)/[`warn!`](crate::warn)/
/// [`info!`](crate::info)/[`debug!`](crate::debug) macros, which check
/// [`enabled`] before evaluating their fields.
pub fn log(level: Level, msg: &str, fields: &[(&str, &dyn Display)]) {
    if !enabled(level) {
        return;
    }
    let mut line = render(JSON.load(Ordering::Relaxed), epoch_micros(), level, msg, fields);
    line.push('\n');
    // One write_all per line keeps concurrent events from interleaving;
    // a logging failure must never take the server down with it.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Emits one structured event at an explicit level:
/// `log_event!(Level::Info, "listening", addr = addr, workers = 4)`.
#[macro_export]
macro_rules! log_event {
    ($level:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let level = $level;
        if $crate::enabled(level) {
            $crate::log(
                level,
                $msg,
                &[$((stringify!($key), &$val as &dyn ::std::fmt::Display)),*],
            );
        }
    }};
}

/// `error!("msg", key = value, …)` — see [`log_event!`](crate::log_event).
#[macro_export]
macro_rules! error { ($($t:tt)*) => { $crate::log_event!($crate::Level::Error, $($t)*) }; }

/// `warn!("msg", key = value, …)` — see [`log_event!`](crate::log_event).
#[macro_export]
macro_rules! warn { ($($t:tt)*) => { $crate::log_event!($crate::Level::Warn, $($t)*) }; }

/// `info!("msg", key = value, …)` — see [`log_event!`](crate::log_event).
#[macro_export]
macro_rules! info { ($($t:tt)*) => { $crate::log_event!($crate::Level::Info, $($t)*) }; }

/// `debug!("msg", key = value, …)` — see [`log_event!`](crate::log_event).
#[macro_export]
macro_rules! debug { ($($t:tt)*) => { $crate::log_event!($crate::Level::Debug, $($t)*) }; }

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("debug".parse::<Level>(), Ok(Level::Debug));
        assert_eq!("error".parse::<Level>(), Ok(Level::Error));
        assert!("verbose".parse::<Level>().is_err());
        assert!(Level::Error < Level::Warn && Level::Warn < Level::Info && Level::Info < Level::Debug);
    }

    #[test]
    fn logfmt_quotes_only_when_needed() {
        let line = render(
            false,
            7,
            Level::Info,
            "listening",
            &[("addr", &"127.0.0.1:7700"), ("spec", &"lccs m=16"), ("err", &"a \"b\"")],
        );
        assert_eq!(
            line,
            "ts=7 level=info msg=listening addr=127.0.0.1:7700 spec=\"lccs m=16\" err=\"a \\\"b\\\"\""
        );
    }

    #[test]
    fn json_lines_escape_values() {
        let line = render(true, 7, Level::Warn, "bad \"frame\"", &[("peer", &"1.2.3.4:5")]);
        assert_eq!(
            line,
            "{\"ts\":7,\"level\":\"warn\",\"msg\":\"bad \\\"frame\\\"\",\"peer\":\"1.2.3.4:5\"}"
        );
    }

    #[test]
    fn empty_and_equals_values_stay_parseable() {
        let line = render(false, 1, Level::Debug, "m", &[("a", &""), ("b", &"x=y")]);
        assert_eq!(line, "ts=1 level=debug msg=m a=\"\" b=\"x=y\"");
    }
}
