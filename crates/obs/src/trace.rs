//! Request tracing: wire-propagated trace contexts and span trees.
//!
//! A [`TraceContext`] is the pair `(trace_id, span_id)` a request
//! carries. The serving edge (annd in either mode) mints one when a
//! request arrives without a context; the router mints a *child*
//! context per downstream shard call, so every frame a shard logs
//! carries the same `trace_id` as the routed request that caused it.
//!
//! [`SpanRecord`] is the offline/side of the same story: the router
//! (and the direct server) assemble one span tree per request —
//! per-shard queue wait, connect, downstream RTT, merge — and render it
//! into the slow-query log when the request crosses the
//! `--slow-query-ms` threshold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The identity a traced request carries across the wire.
///
/// Both ids are non-zero: `trace_id` names the end-to-end request (it
/// survives hops unchanged), `span_id` names one hop's unit of work
/// (the router re-mints it per shard call via [`TraceContext::child`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// End-to-end request id, stable across hops.
    pub trace_id: u64,
    /// This hop's span id.
    pub span_id: u64,
}

impl TraceContext {
    /// Mints a fresh context (new trace, new root span) — what the
    /// serving edge does when a request arrives untraced.
    pub fn mint() -> TraceContext {
        TraceContext { trace_id: next_id(), span_id: next_id() }
    }

    /// A child context: same trace, fresh span — what the router
    /// attaches to each downstream shard call.
    pub fn child(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id: next_id() }
    }
}

impl std::fmt::Display for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}/{:016x}", self.trace_id, self.span_id)
    }
}

/// splitmix64 — a full-period mixer over a process-unique counter, so
/// ids are unique within a process and unlikely to collide across
/// processes (the seed folds in time-of-start and pid).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn id_counter() -> &'static AtomicU64 {
    static COUNTER: OnceLock<AtomicU64> = OnceLock::new();
    COUNTER.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        AtomicU64::new(nanos ^ (u64::from(std::process::id()) << 32))
    })
}

/// The next non-zero trace/span id.
fn next_id() -> u64 {
    loop {
        let raw = id_counter().fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(raw);
        if id != 0 {
            return id;
        }
    }
}

/// One node of a finished span tree: a named unit of work with its
/// offset from the request start, its duration, optional `key=value`
/// annotations, and child spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// What the span covers (`search`, `shard0`, `merge`, …).
    pub name: String,
    /// Microseconds from the request (root span) start.
    pub start_micros: u64,
    /// Microseconds the span took.
    pub duration_micros: u64,
    /// Extra annotations rendered after the timing.
    pub fields: Vec<(String, String)>,
    /// Nested child spans, in start order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// A span named `name` covering `start_micros..start_micros + duration_micros`.
    pub fn new(name: impl Into<String>, start_micros: u64, duration_micros: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            start_micros,
            duration_micros,
            fields: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds a `key=value` annotation (builder-style).
    pub fn field(mut self, key: impl Into<String>, value: impl ToString) -> SpanRecord {
        self.fields.push((key.into(), value.to_string()));
        self
    }

    /// Adds a child span.
    pub fn push_child(&mut self, child: SpanRecord) {
        self.children.push(child);
    }

    /// Renders the tree, one span per line:
    ///
    /// ```text
    /// search +0us 18234us index=smoke k=10
    /// ├─ shard0 +41us 17002us queue_us=12 connect_us=3 rtt_us=16987
    /// ├─ shard1 +44us 9120us queue_us=15 connect_us=2 rtt_us=9103
    /// └─ merge +17110us 64us hits=10
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", true, true);
        out
    }

    fn render_into(&self, out: &mut String, prefix: &str, is_root: bool, is_last: bool) {
        if !is_root {
            out.push_str(prefix);
            out.push_str(if is_last { "└─ " } else { "├─ " });
        }
        out.push_str(&self.name);
        out.push_str(&format!(" +{}us {}us", self.start_micros, self.duration_micros));
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        let child_prefix = if is_root {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "│  " })
        };
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &child_prefix, false, i + 1 == self.children.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let ctx = TraceContext::mint();
            assert_ne!(ctx.trace_id, 0);
            assert_ne!(ctx.span_id, 0);
            assert!(seen.insert(ctx.trace_id), "trace ids repeat");
            assert!(seen.insert(ctx.span_id), "span ids collide with trace ids");
        }
    }

    #[test]
    fn children_keep_the_trace_and_change_the_span() {
        let root = TraceContext::mint();
        let a = root.child();
        let b = root.child();
        assert_eq!(a.trace_id, root.trace_id);
        assert_eq!(b.trace_id, root.trace_id);
        assert_ne!(a.span_id, root.span_id);
        assert_ne!(a.span_id, b.span_id);
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let ctx = TraceContext { trace_id: 0xab, span_id: 1 };
        assert_eq!(ctx.to_string(), "00000000000000ab/0000000000000001");
    }

    #[test]
    fn span_trees_render_with_guides() {
        let mut root = SpanRecord::new("search", 0, 18234).field("index", "smoke").field("k", 10);
        let mut s0 = SpanRecord::new("shard0", 41, 17002).field("rtt_us", 16987);
        s0.push_child(SpanRecord::new("connect", 41, 3));
        root.push_child(s0);
        root.push_child(SpanRecord::new("shard1", 44, 9120));
        root.push_child(SpanRecord::new("merge", 17110, 64).field("hits", 10));
        let text = root.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "search +0us 18234us index=smoke k=10");
        assert_eq!(lines[1], "├─ shard0 +41us 17002us rtt_us=16987");
        assert_eq!(lines[2], "│  └─ connect +41us 3us");
        assert_eq!(lines[3], "├─ shard1 +44us 9120us");
        assert_eq!(lines[4], "└─ merge +17110us 64us hits=10");
    }
}
