//! Algorithm 2 — k-LCCS search over the CSA.
//!
//! Phase 1 (anchoring): one full binary search on `I_1`, then for each
//! subsequent rotation a binary search *narrowed* through the next links
//! (Lemma 3.1 / Corollary 3.2) whenever both boundary LCPs are ≥ 1. The
//! result is, per rotation `s`, the positions of `T_{l,s}` (greatest string
//! ⪯ the rotated query) and `T_{u,s}` (least string ≻ it) plus their LCPs.
//!
//! Phase 2 (merging): a max-priority-queue performs a 2m-way merge over the
//! anchored cursors, expanding each popped cursor one position outward in
//! its direction. Because the LCP against the query is non-increasing as a
//! cursor moves away from its anchor (Fact 3.2), the queue pops objects in
//! exactly non-increasing LCP order — so the first time an object surfaces,
//! it surfaces at its true LCCS length, and the first `k` distinct objects
//! are an exact k-LCCS answer (see `tests::matches_naive_reference`).

use crate::build::Csa;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One search result: a string id and its LCCS length with the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Index of the string in the indexed [`crate::StringSet`].
    pub id: u32,
    /// `|LCCS(T_id, Q)|`.
    pub len: u32,
}

/// Boundary anchor of one rotation: positions of `T_l` / `T_u` in `I_s` and
/// their LCP lengths against the rotated query. Positions use sentinels
/// (`pos_l = -1` when the query precedes every string; `pos_u = n` when it
/// follows every string).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorRow {
    /// Position of the lower bound in `I_s`, or −1.
    pub pos_l: i64,
    /// Position of the upper bound in `I_s`, or `n`.
    pub pos_u: i64,
    /// `|LCP(shift(T_l, s), shift(Q, s))|` (0 when `pos_l` is a sentinel).
    pub len_l: u32,
    /// `|LCP(shift(T_u, s), shift(Q, s))|` (0 when `pos_u` is a sentinel).
    pub len_u: u32,
}

impl AnchorRow {
    /// The larger of the two boundary LCPs — the "reach" used by
    /// MP-LCCS-LSH's skip-unaffected-positions rule (§4.2).
    pub fn reach(&self) -> u32 {
        self.len_l.max(self.len_u)
    }
}

/// The per-rotation anchors of one query (stored by the multi-probe scheme
/// to decide which rotations a perturbation can affect).
#[derive(Debug, Clone)]
pub struct Anchors {
    rows: Vec<AnchorRow>,
}

impl Anchors {
    /// Anchor of rotation `s`.
    pub fn row(&self, s: usize) -> AnchorRow {
        self.rows[s]
    }

    /// Number of rotations (= m).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Always false for a constructed value (m ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Reusable per-query scratch: the seen-set (query-epoch stamps) and the
/// cursor heap. Reusing it across queries removes all per-query allocation.
#[derive(Debug, Default)]
pub struct SearchScratch {
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
}

impl SearchScratch {
    /// Scratch sized for `csa`.
    pub fn for_csa(csa: &Csa) -> Self {
        Self { stamp: vec![0; csa.len()], epoch: 0, heap: BinaryHeap::new() }
    }

    /// The string count this scratch was sized for; reusing it with a CSA
    /// of a different size is invalid.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }

    /// Starts a new logical query: clears the seen-set in O(1).
    pub fn begin_query(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: hard-reset stamps to keep correctness.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn mark_new(&mut self, id: u32) -> bool {
        let slot = &mut self.stamp[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct HeapEntry {
    len: u32,
    s: u32,
    pos: u32,
    dir: i8,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on LCP length; ties broken by rotation then position for
        // determinism.
        self.len
            .cmp(&other.len)
            .then_with(|| other.s.cmp(&self.s))
            .then_with(|| other.pos.cmp(&self.pos))
            .then_with(|| other.dir.cmp(&self.dir))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Csa {
    /// Full binary search of rotation `s` for the rotated query (Algorithm 2
    /// line 2 / line 9): returns the anchor row.
    fn binary_search_full(&self, q: &[u64], s: usize) -> AnchorRow {
        self.binary_search_window(q, s, 0, self.len())
    }

    /// Binary search restricted to positions `[lo, hi)` of `I_s`. The window
    /// must be chosen so that the partition point lies inside `[lo, hi]`
    /// (guaranteed by Lemma 3.1 when narrowing through next links).
    fn binary_search_window(&self, q: &[u64], s: usize, lo: usize, hi: usize) -> AnchorRow {
        let n = self.len();
        debug_assert!(lo <= hi && hi <= n);
        // partition point p in [lo, hi]: count of strings with
        // shift(T, s) ⪯ shift(Q, s) among positions [lo, hi).
        let mut a = lo;
        let mut b = hi;
        while a < b {
            let mid = a + (b - a) / 2;
            let id = self.id_at(s, mid) as usize;
            if self.strings().cmp_row_query(id, q, s) != Ordering::Greater {
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        let p = a as i64;
        let (pos_l, len_l) = if p > 0 {
            let pos = p - 1;
            let id = self.id_at(s, pos as usize) as usize;
            (pos, self.strings().lcp_row_query(id, q, s) as u32)
        } else {
            (-1, 0)
        };
        let (pos_u, len_u) = if (p as usize) < n {
            let id = self.id_at(s, p as usize) as usize;
            (p, self.strings().lcp_row_query(id, q, s) as u32)
        } else {
            (n as i64, 0)
        };
        AnchorRow { pos_l, pos_u, len_l, len_u }
    }

    /// Phase-1 anchoring with the "simple method" of §3.2: a *full* binary
    /// search at every rotation, `O(m (m + log n))`. Kept as the ablation
    /// baseline for the next-link narrowing of Lemma 3.1 — `anchor` must
    /// produce identical anchors (tested) while doing O(1)-expected work per
    /// rotation after the first.
    pub fn anchor_simple(&self, q: &[u64]) -> Anchors {
        assert_eq!(q.len(), self.m(), "query length must equal m");
        Anchors { rows: (0..self.m()).map(|s| self.binary_search_full(q, s)).collect() }
    }

    /// Phase-1 anchoring for all rotations (lines 2–11 of Algorithm 2).
    pub fn anchor(&self, q: &[u64]) -> Anchors {
        assert_eq!(q.len(), self.m(), "query length must equal m");
        let m = self.m();
        let mut rows = Vec::with_capacity(m);
        rows.push(self.binary_search_full(q, 0));
        for s in 1..m {
            let prev = rows[s - 1];
            let narrowed = prev.len_l >= 1 && prev.len_u >= 1;
            let row = if narrowed {
                // Both anchors exist (len ≥ 1 ⟹ non-sentinel); Lemma 3.1
                // bounds the new partition point inside [lo+1, hi].
                let lo = self.next_at(s - 1, prev.pos_l as usize) as usize;
                let hi = self.next_at(s - 1, prev.pos_u as usize) as usize;
                debug_assert!(lo < hi, "next links must preserve order");
                self.binary_search_window(q, s, lo, hi + 1)
            } else {
                self.binary_search_full(q, s)
            };
            rows.push(row);
        }
        Anchors { rows }
    }

    /// k-LCCS search (Algorithm 2). Returns up to `k` distinct string ids in
    /// non-increasing LCCS order. Convenience wrapper that allocates its own
    /// scratch; hot paths should use [`Csa::search_with`].
    pub fn search(&self, q: &[u64], k: usize) -> Vec<Candidate> {
        let mut scratch = SearchScratch::for_csa(self);
        self.search_with(q, k, &mut scratch).0
    }

    /// k-LCCS search reusing caller scratch. Also returns the per-rotation
    /// anchors so multi-probe extensions can decide which rotations a hash
    /// perturbation affects. `scratch` is reset at entry (a fresh query).
    pub fn search_with(
        &self,
        q: &[u64],
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Candidate>, Anchors) {
        scratch.begin_query();
        let anchors = self.anchor(q);
        self.seed_cursors(&anchors, scratch);
        let out = self.drain_candidates(q, k, scratch);
        (out, anchors)
    }

    /// Continues the same logical query with *additional* rotations searched
    /// against a (possibly modified) query string — the MP-LCCS-LSH probing
    /// primitive. Previously returned ids are not returned again (the
    /// scratch's seen-set persists until the next `begin_query`). Rotations
    /// outside `0..m` are ignored.
    pub fn probe_rotations(
        &self,
        q: &[u64],
        rotations: &[usize],
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<Candidate> {
        assert_eq!(q.len(), self.m(), "query length must equal m");
        scratch.heap.clear();
        for &s in rotations {
            if s >= self.m() {
                continue;
            }
            let row = self.binary_search_full(q, s);
            self.push_anchor(s, row, scratch);
        }
        self.drain_candidates(q, k, scratch)
    }

    fn seed_cursors(&self, anchors: &Anchors, scratch: &mut SearchScratch) {
        for (s, row) in anchors.rows.iter().enumerate() {
            self.push_anchor(s, *row, scratch);
        }
    }

    fn push_anchor(&self, s: usize, row: AnchorRow, scratch: &mut SearchScratch) {
        if row.pos_l >= 0 {
            scratch.heap.push(HeapEntry {
                len: row.len_l,
                s: s as u32,
                pos: row.pos_l as u32,
                dir: -1,
            });
        }
        if (row.pos_u as usize) < self.len() {
            scratch.heap.push(HeapEntry {
                len: row.len_u,
                s: s as u32,
                pos: row.pos_u as u32,
                dir: 1,
            });
        }
    }

    /// Lines 12–15: pop cursors in non-increasing LCP order, emit unseen
    /// ids, advance each popped cursor outward.
    fn drain_candidates(
        &self,
        q: &[u64],
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<Candidate> {
        let n = self.len();
        let mut out = Vec::with_capacity(k.min(n));
        while out.len() < k {
            let Some(e) = scratch.heap.pop() else { break };
            let id = self.id_at(e.s as usize, e.pos as usize);
            if scratch.mark_new(id) {
                out.push(Candidate { id, len: e.len });
            }
            let next_pos = e.pos as i64 + i64::from(e.dir);
            if next_pos >= 0 && (next_pos as usize) < n {
                let nid = self.id_at(e.s as usize, next_pos as usize) as usize;
                let len = self.strings().lcp_row_query(nid, q, e.s as usize) as u32;
                scratch.heap.push(HeapEntry {
                    len,
                    s: e.s,
                    pos: next_pos as u32,
                    dir: e.dir,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circ::StringSet;
    use crate::naive;

    fn paper_csa() -> Csa {
        Csa::build(StringSet::from_rows(&[
            vec![1, 2, 4, 5, 6, 6, 7, 8], // o1 — LCCS 5 with q
            vec![5, 2, 2, 4, 3, 6, 7, 8], // o2 — LCCS 3
            vec![3, 1, 3, 5, 5, 6, 4, 9], // o3 — LCCS 2
        ]))
    }

    const Q: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

    #[test]
    fn figure_1c_search() {
        let csa = paper_csa();
        let got = csa.search(&Q, 3);
        assert_eq!(got[0], Candidate { id: 0, len: 5 });
        assert_eq!(got[1], Candidate { id: 1, len: 3 });
        assert_eq!(got[2], Candidate { id: 2, len: 2 });
    }

    #[test]
    fn k_one_returns_best() {
        let csa = paper_csa();
        let got = csa.search(&Q, 1);
        assert_eq!(got, vec![Candidate { id: 0, len: 5 }]);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let csa = paper_csa();
        let got = csa.search(&Q, 10);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn anchors_have_valid_shapes() {
        let csa = paper_csa();
        let anchors = csa.anchor(&Q);
        assert_eq!(anchors.len(), 8);
        for s in 0..8 {
            let r = anchors.row(s);
            assert!(r.pos_l >= -1 && r.pos_l < 3);
            assert!(r.pos_u >= 0 && r.pos_u <= 3);
            assert_eq!(r.pos_u, r.pos_l + 1, "bounds are adjacent positions");
        }
    }

    #[test]
    fn exact_query_match_is_found_with_full_length() {
        let rows = vec![
            vec![4u64, 2, 9, 9],
            vec![1, 2, 3, 4],
            vec![9, 9, 9, 9],
        ];
        let csa = Csa::build(StringSet::from_rows(&rows));
        let got = csa.search(&[1, 2, 3, 4], 1);
        assert_eq!(got, vec![Candidate { id: 1, len: 4 }]);
    }

    fn lcg_rows(n: usize, m: usize, alphabet: u64, seed: u64) -> Vec<Vec<u64>> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) % alphabet
        };
        (0..n).map(|_| (0..m).map(|_| next()).collect()).collect()
    }

    #[test]
    fn matches_naive_reference() {
        // Exactness of Algorithm 2: for random sets, the returned lengths
        // equal the true LCCS of each id, and the multiset of top-k lengths
        // matches the naive oracle's.
        for (n, m, alpha, seed) in
            [(30, 6, 3, 1u64), (50, 8, 2, 2), (25, 12, 4, 3), (64, 5, 5, 4)]
        {
            let rows = lcg_rows(n, m, alpha, seed);
            let set = StringSet::from_rows(&rows);
            let csa = Csa::build(set.clone());
            let mut qseed = seed ^ 0xabcdef;
            let mut nextq = move || {
                qseed = qseed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (qseed >> 33) % alpha
            };
            for _ in 0..8 {
                let q: Vec<u64> = (0..m).map(|_| nextq()).collect();
                for k in [1usize, 3, n / 2, n] {
                    let fast = csa.search(&q, k);
                    let slow = naive::k_lccs_naive(&set, &q, k);
                    assert_eq!(fast.len(), k);
                    // every reported length is the true LCCS of that id
                    for c in &fast {
                        assert_eq!(
                            c.len as usize,
                            naive::lccs_len(set.row(c.id as usize), &q),
                            "id {} wrong LCCS",
                            c.id
                        );
                    }
                    // multiset of lengths matches the oracle's top-k
                    let mut fl: Vec<u32> = fast.iter().map(|c| c.len).collect();
                    let mut sl: Vec<u32> = slow.iter().map(|c| c.1 as u32).collect();
                    fl.sort_unstable();
                    sl.sort_unstable();
                    assert_eq!(fl, sl, "n={n} m={m} k={k}");
                }
            }
        }
    }

    #[test]
    fn results_are_non_increasing_in_length() {
        let rows = lcg_rows(80, 10, 3, 9);
        let csa = Csa::build(StringSet::from_rows(&rows));
        let q: Vec<u64> = vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0];
        let got = csa.search(&q, 80);
        for w in got.windows(2) {
            assert!(w[0].len >= w[1].len);
        }
    }

    #[test]
    fn scratch_reuse_across_queries() {
        let rows = lcg_rows(40, 6, 3, 5);
        let csa = Csa::build(StringSet::from_rows(&rows));
        let mut scratch = SearchScratch::for_csa(&csa);
        let q1: Vec<u64> = vec![0, 1, 2, 0, 1, 2];
        let q2: Vec<u64> = vec![2, 2, 1, 0, 0, 1];
        let (a1, _) = csa.search_with(&q1, 5, &mut scratch);
        let (a2, _) = csa.search_with(&q2, 5, &mut scratch);
        assert_eq!(a1, csa.search(&q1, 5));
        assert_eq!(a2, csa.search(&q2, 5));
    }

    #[test]
    fn probe_rotations_excludes_already_seen() {
        let csa = paper_csa();
        let mut scratch = SearchScratch::for_csa(&csa);
        let (first, _) = csa.search_with(&Q, 1, &mut scratch);
        assert_eq!(first[0].id, 0);
        // Probing every rotation with the same query must not return o1
        // again; it returns the remaining objects instead.
        let rot: Vec<usize> = (0..8).collect();
        let more = csa.probe_rotations(&Q, &rot, 2, &mut scratch);
        let ids: Vec<u32> = more.iter().map(|c| c.id).collect();
        assert!(!ids.contains(&0));
        assert_eq!(more.len(), 2);
    }

    #[test]
    fn probe_rotations_ignores_out_of_range() {
        let csa = paper_csa();
        let mut scratch = SearchScratch::for_csa(&csa);
        scratch.begin_query();
        let got = csa.probe_rotations(&Q, &[99], 3, &mut scratch);
        assert!(got.is_empty());
    }

    #[test]
    fn epoch_wraparound_resets_cleanly() {
        let csa = paper_csa();
        let mut scratch = SearchScratch::for_csa(&csa);
        scratch.epoch = u32::MAX;
        let (got, _) = csa.search_with(&Q, 3, &mut scratch);
        assert_eq!(got.len(), 3);
    }

    #[test]
    #[should_panic(expected = "query length")]
    fn wrong_query_length_panics() {
        paper_csa().search(&[1, 2, 3], 1);
    }

    #[test]
    fn narrowed_anchoring_equals_simple_method() {
        // The Lemma 3.1 narrowing must be a pure optimization: identical
        // anchors to m independent full binary searches, on adversarial
        // inputs (small alphabet => duplicate strings, sentinel anchors).
        for (n, m, alpha, seed) in [(40usize, 8usize, 2u64, 1u64), (25, 12, 3, 2), (60, 6, 4, 3)] {
            let rows = lcg_rows(n, m, alpha, seed);
            let csa = Csa::build(StringSet::from_rows(&rows));
            let mut qseed = seed ^ 0x5a5a;
            let mut nextq = move || {
                qseed = qseed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (qseed >> 33) % alpha
            };
            for _ in 0..10 {
                let q: Vec<u64> = (0..m).map(|_| nextq()).collect();
                let fast = csa.anchor(&q);
                let slow = csa.anchor_simple(&q);
                for s in 0..m {
                    // Lengths must agree exactly; positions may differ among
                    // equal strings (ties), so compare the anchored strings'
                    // rotated views rather than raw positions.
                    let (f, sl) = (fast.row(s), slow.row(s));
                    assert_eq!(f.len_l, sl.len_l, "len_l at rotation {s}");
                    assert_eq!(f.len_u, sl.len_u, "len_u at rotation {s}");
                    assert_eq!(f.pos_l, sl.pos_l, "pos_l at rotation {s}");
                    assert_eq!(f.pos_u, sl.pos_u, "pos_u at rotation {s}");
                }
            }
        }
    }

    #[test]
    fn duplicates_of_query_all_surface() {
        let rows = vec![vec![1u64, 2, 3], vec![1, 2, 3], vec![9, 9, 9], vec![1, 2, 3]];
        let csa = Csa::build(StringSet::from_rows(&rows));
        let got = csa.search(&[1, 2, 3], 3);
        let mut ids: Vec<u32> = got.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 3]);
        assert!(got.iter().all(|c| c.len == 3));
    }
}
