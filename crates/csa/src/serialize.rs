//! Binary persistence for the CSA.
//!
//! Layout (little-endian): magic `b"CSA1"`, `n: u64`, `m: u64`, then the
//! `n*m` string symbols (`u64`), the `m*n` sorted ids (`u32`) and the `m*n`
//! next links (`u32`). The format is versioned by the magic so future
//! layouts can coexist. Round-tripping an index is how the harness measures
//! and amortizes the paper's indexing-time axis (Figures 6–7) across runs.

use crate::build::Csa;
use crate::circ::StringSet;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"CSA1";

/// Errors raised when decoding a serialized CSA.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic header did not match.
    BadMagic,
    /// The payload ended before all declared sections were read.
    Truncated,
    /// Declared sizes are inconsistent or overflow.
    BadShape,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a CSA1 payload"),
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadShape => write!(f, "inconsistent declared shape"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Csa {
    /// Serializes the full index (strings + both link arrays).
    pub fn to_bytes(&self) -> Bytes {
        let n = self.len();
        let m = self.m();
        let cap = 4 + 16 + n * m * 8 + 2 * m * n * 4;
        let mut buf = BytesMut::with_capacity(cap);
        buf.put_slice(MAGIC);
        buf.put_u64_le(n as u64);
        buf.put_u64_le(m as u64);
        for &sym in self.set.as_flat() {
            buf.put_u64_le(sym);
        }
        for &id in &self.sorted {
            buf.put_u32_le(id);
        }
        for &nx in &self.next {
            buf.put_u32_le(nx);
        }
        buf.freeze()
    }

    /// Decodes a payload produced by [`Csa::to_bytes`].
    pub fn from_bytes(mut buf: impl Buf) -> Result<Csa, DecodeError> {
        if buf.remaining() < 20 {
            return Err(DecodeError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let n = buf.get_u64_le() as usize;
        let m = buf.get_u64_le() as usize;
        if n == 0 || m == 0 || n > u32::MAX as usize {
            return Err(DecodeError::BadShape);
        }
        let need = n
            .checked_mul(m)
            .and_then(|nm| nm.checked_mul(8 + 4 + 4))
            .ok_or(DecodeError::BadShape)?;
        if buf.remaining() < need {
            return Err(DecodeError::Truncated);
        }
        let mut data = Vec::with_capacity(n * m);
        for _ in 0..n * m {
            data.push(buf.get_u64_le());
        }
        let mut sorted = Vec::with_capacity(m * n);
        for _ in 0..m * n {
            let v = buf.get_u32_le();
            if v as usize >= n {
                return Err(DecodeError::BadShape);
            }
            sorted.push(v);
        }
        let mut next = Vec::with_capacity(m * n);
        for _ in 0..m * n {
            let v = buf.get_u32_le();
            if v as usize >= n {
                return Err(DecodeError::BadShape);
            }
            next.push(v);
        }
        Ok(Csa { set: StringSet::from_flat(n, m, data), sorted, next })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csa {
        Csa::build(StringSet::from_rows(&[
            vec![1, 2, 4, 5, 6, 6, 7, 8],
            vec![5, 2, 2, 4, 3, 6, 7, 8],
            vec![3, 1, 3, 5, 5, 6, 4, 9],
        ]))
    }

    #[test]
    fn round_trip_preserves_index_and_results() {
        let csa = sample();
        let bytes = csa.to_bytes();
        let back = Csa::from_bytes(bytes).unwrap();
        assert_eq!(back, csa);
        let q = [1u64, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(back.search(&q, 3), csa.search(&q, 3));
    }

    #[test]
    fn bad_magic_rejected() {
        let csa = sample();
        let mut raw = csa.to_bytes().to_vec();
        raw[0] = b'X';
        assert_eq!(Csa::from_bytes(&raw[..]), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let csa = sample();
        let raw = csa.to_bytes();
        let cut = &raw[..raw.len() - 5];
        assert_eq!(Csa::from_bytes(cut), Err(DecodeError::Truncated));
    }

    #[test]
    fn corrupted_link_rejected() {
        let csa = sample();
        let mut raw = csa.to_bytes().to_vec();
        // Point a sorted id out of range (first id right after the 20-byte
        // header + 3*8*8 bytes of symbols).
        let off = 20 + 3 * 8 * 8;
        raw[off..off + 4].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(Csa::from_bytes(&raw[..]), Err(DecodeError::BadShape));
    }

    #[test]
    fn empty_payload_rejected() {
        assert_eq!(Csa::from_bytes(&[][..]), Err(DecodeError::Truncated));
    }
}
