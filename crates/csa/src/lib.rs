//! Circular Shift Array (CSA) and exact k-LCCS search — §3 of
//! *"Locality-Sensitive Hashing Scheme based on Longest Circular
//! Co-Substring"* (SIGMOD 2020).
//!
//! Given two strings `T` and `Q` of the same length `m`, a **Circular
//! Co-Substring** is a common circular substring that starts at the same
//! position in both (Definition 3.1); the **LCCS** is the longest one
//! (Definition 3.2). The **k-LCCS search** problem (Definition 3.3) asks,
//! for a database of `n` strings and a query `Q`, for the `k` strings with
//! the longest LCCS against `Q`.
//!
//! The paper solves it with the **Circular Shift Array**, a suffix-array
//! inspired structure: `m` sorted indices `I_1..I_m` (one per rotation) plus
//! `m` next-link arrays `N_1..N_m` connecting consecutive rotations
//! (Algorithm 1). Queries run one full binary search on `I_1`, then narrowed
//! binary searches on each subsequent rotation (Lemma 3.1 / Corollary 3.2),
//! and finally a 2m-way sorted-merge over a max-priority-queue (Algorithm 2).
//! The expected query cost is `O(log n + (m + k) log m)` (Theorem 3.1).
//!
//! This crate is self-contained (strings are plain `u64` symbol rows) and —
//! as the paper notes — "potentially of separate interest": nothing in here
//! knows about LSH.
//!
//! ```
//! use csa::{Csa, StringSet};
//!
//! // Figure 1(c)'s running example: three length-8 strings.
//! let set = StringSet::from_rows(&[
//!     vec![1, 2, 4, 5, 6, 6, 7, 8],  // o1
//!     vec![5, 2, 2, 4, 3, 6, 7, 8],  // o2
//!     vec![3, 1, 3, 5, 5, 6, 4, 9],  // o3
//! ]);
//! let csa = Csa::build(set);
//! let q = [1, 2, 3, 4, 5, 6, 7, 8];
//! let top = csa.search(&q, 1);
//! assert_eq!(top[0].id, 0);   // o1 has the longest LCCS (= 5) with q
//! assert_eq!(top[0].len, 5);
//! ```
//!
//! Where this crate sits in the workspace is mapped in
//! `docs/architecture.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod circ;
pub mod naive;
pub mod search;
pub mod serialize;

pub use build::Csa;
pub use circ::StringSet;
pub use search::{Anchors, Candidate, SearchScratch};
