//! Algorithm 1 — building the Circular Shift Array.
//!
//! For each rotation `s ∈ {0..m-1}` the CSA stores:
//!
//! * `I_s` (`sorted`): the ids of all `n` strings, sorted by the
//!   lexicographic order of their rotation-`s` views;
//! * `N_s` (`next`): for each *position* `j` in `I_s`, the position of the
//!   same string in `I_{(s+1) % m}` — the "next links" that let Algorithm 2
//!   narrow its binary search range from one rotation to the next
//!   (Lemma 3.1).
//!
//! Space is `O(n m)` (two `u32` per string per rotation, Theorem 3.1) and
//! indexing time `O(m n log n)` string comparisons, each `O(1)` expected for
//! strings of i.i.d. symbols.

use crate::circ::StringSet;

/// The Circular Shift Array over a [`StringSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csa {
    pub(crate) set: StringSet,
    /// `m × n`, rotation-major: `sorted[s*n + j]` = id at position j of I_s.
    pub(crate) sorted: Vec<u32>,
    /// `m × n`: `next[s*n + j]` = position in I_{(s+1)%m} of the string at
    /// position j of I_s.
    pub(crate) next: Vec<u32>,
}

impl Csa {
    /// Builds the CSA (Algorithm 1). Rotations are sorted in parallel.
    ///
    /// # Panics
    /// Panics if the set is empty or `n` exceeds `u32::MAX`.
    pub fn build(set: StringSet) -> Self {
        assert!(!set.is_empty(), "cannot build a CSA over zero strings");
        assert!(set.len() <= u32::MAX as usize, "string ids must fit in u32");
        let n = set.len();
        let m = set.m();

        // Line 2: I_s = argsort(shift(T, s)) for every rotation, in parallel.
        let mut sorted = vec![0u32; m * n];
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(16);
        let per = m.div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for (t, slab) in sorted.chunks_mut(per * n).enumerate() {
                let set = &set;
                scope.spawn(move || {
                    for (r, idx) in slab.chunks_exact_mut(n).enumerate() {
                        let s = t * per + r;
                        for (j, v) in idx.iter_mut().enumerate() {
                            *v = j as u32;
                        }
                        idx.sort_unstable_by(|&a, &b| {
                            set.cmp_rows(a as usize, b as usize, s)
                        });
                    }
                });
            }
        });

        // Lines 3–7: next links via the position-of-id table of the
        // following rotation.
        let mut next = vec![0u32; m * n];
        let mut pos = vec![0u32; n];
        for s in 0..m {
            let succ = (s + 1) % m;
            for j in 0..n {
                pos[sorted[succ * n + j] as usize] = j as u32;
            }
            for j in 0..n {
                next[s * n + j] = pos[sorted[s * n + j] as usize];
            }
        }

        Self { set, sorted, next }
    }

    /// Number of indexed strings `n`.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when empty (never: construction requires n ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// String length `m`.
    pub fn m(&self) -> usize {
        self.set.m()
    }

    /// The indexed strings.
    pub fn strings(&self) -> &StringSet {
        &self.set
    }

    /// Id at position `j` of sorted index `I_s` (s is 0-based rotation).
    #[inline]
    pub(crate) fn id_at(&self, s: usize, j: usize) -> u32 {
        self.sorted[s * self.set.len() + j]
    }

    /// Next-link of position `j` in `I_s`.
    #[inline]
    pub(crate) fn next_at(&self, s: usize, j: usize) -> u32 {
        self.next[s * self.set.len() + j]
    }

    /// Total index footprint in bytes (sorted + next links + the hash
    /// strings themselves) — the "Index Size" axis of Figures 6–7.
    pub fn nbytes(&self) -> usize {
        self.sorted.len() * 4 + self.next.len() * 4 + self.set.nbytes()
    }

    /// Checks the structural invariants (every `I_s` is a permutation sorted
    /// by rotation-s order; every next link points at the same string).
    /// Test/debug helper; `O(n m)` comparisons.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.set.len();
        let m = self.set.m();
        for s in 0..m {
            let mut seen = vec![false; n];
            for j in 0..n {
                let id = self.id_at(s, j) as usize;
                if seen[id] {
                    return Err(format!("I_{s} repeats id {id}"));
                }
                seen[id] = true;
                if j > 0 {
                    let prev = self.id_at(s, j - 1) as usize;
                    if self.set.cmp_rows(prev, id, s) == std::cmp::Ordering::Greater {
                        return Err(format!("I_{s} not sorted at position {j}"));
                    }
                }
                let succ = (s + 1) % m;
                let np = self.next_at(s, j) as usize;
                if self.id_at(succ, np) != id as u32 {
                    return Err(format!("N_{s}[{j}] does not track id {id}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circ::rotate;

    fn paper_set() -> StringSet {
        StringSet::from_rows(&[
            vec![1, 2, 4, 5, 6, 6, 7, 8], // o1
            vec![5, 2, 2, 4, 3, 6, 7, 8], // o2
            vec![3, 1, 3, 5, 5, 6, 4, 9], // o3
        ])
    }

    #[test]
    fn example_3_2_first_index_and_links() {
        // The paper's Example 3.2: I_1 = [1, 3, 2] and N_1 = [3, 1, 2]
        // (1-based ids and positions; ours are 0-based).
        let csa = Csa::build(paper_set());
        let i1: Vec<u32> = (0..3).map(|j| csa.id_at(0, j)).collect();
        assert_eq!(i1, vec![0, 2, 1], "I_1 should order o1 < o3 < o2");
        let n1: Vec<u32> = (0..3).map(|j| csa.next_at(0, j)).collect();
        assert_eq!(n1, vec![2, 0, 1], "N_1 = [3,1,2] in the paper's 1-based notation");
    }

    #[test]
    fn build_validates_on_random_input() {
        let mut seed = 0x12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) % 5
        };
        let rows: Vec<Vec<u64>> = (0..40).map(|_| (0..6).map(|_| next()).collect()).collect();
        let csa = Csa::build(StringSet::from_rows(&rows));
        csa.validate().expect("invariants must hold");
    }

    #[test]
    fn sorted_indices_follow_rotated_order() {
        let csa = Csa::build(paper_set());
        for s in 0..8 {
            let mut prev: Option<Vec<u64>> = None;
            for j in 0..3 {
                let id = csa.id_at(s, j) as usize;
                let rot = rotate(csa.strings().row(id), s);
                if let Some(p) = &prev {
                    assert!(p <= &rot, "I_{s} must be sorted");
                }
                prev = Some(rot);
            }
        }
    }

    #[test]
    fn duplicate_strings_are_handled() {
        let set = StringSet::from_rows(&[vec![1, 1], vec![1, 1], vec![2, 1]]);
        let csa = Csa::build(set);
        csa.validate().unwrap();
    }

    #[test]
    fn single_string_set() {
        let csa = Csa::build(StringSet::from_rows(&[vec![7, 7, 7]]));
        csa.validate().unwrap();
        assert_eq!(csa.len(), 1);
        assert_eq!(csa.m(), 3);
    }

    #[test]
    fn nbytes_accounts_for_all_arrays() {
        let csa = Csa::build(paper_set());
        // 3 strings × 8 symbols × 8B + 2 × (8 rotations × 3 ids × 4B)
        assert_eq!(csa.nbytes(), 3 * 8 * 8 + 2 * 8 * 3 * 4);
    }

    #[test]
    #[should_panic(expected = "zero strings")]
    fn empty_set_panics() {
        Csa::build(StringSet::from_flat(0, 4, vec![]));
    }
}
