//! Naive reference implementations of LCCS and k-LCCS search.
//!
//! Direct transcriptions of Definitions 3.1–3.3 and Fact 3.1, used as the
//! oracle for unit and property tests of the CSA fast path. `O(n · m²)` per
//! query — never use outside tests/benches.

use crate::circ::{lcp_shifted, StringSet};

/// `|LCCS(t, q)|` by Fact 3.1:
/// `LCCS(T, Q) = max_i LCP(shift(T, i), shift(Q, i))`.
///
/// # Panics
/// Panics if the strings have different lengths or are empty.
pub fn lccs_len(t: &[u64], q: &[u64]) -> usize {
    assert_eq!(t.len(), q.len(), "strings must have equal length");
    assert!(!t.is_empty(), "strings must be non-empty");
    (0..t.len()).map(|s| lcp_shifted(t, q, s)).max().unwrap_or(0)
}

/// Brute-force k-LCCS search: ids of the `k` strings with the longest LCCS
/// against `q`, ties broken by id, descending by length.
///
/// # Panics
/// Panics if `k == 0` or `k > set.len()`.
pub fn k_lccs_naive(set: &StringSet, q: &[u64], k: usize) -> Vec<(u32, usize)> {
    assert!(k > 0 && k <= set.len(), "k must be in 1..=n");
    let mut scored: Vec<(u32, usize)> =
        (0..set.len()).map(|i| (i as u32, lccs_len(set.row(i), q))).collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_1_from_paper() {
        // T = [1,2,3,4,1,5], Q = [1,1,2,3,4,5]: [5,1] is a circular
        // co-substring (positions 6,1), so LCCS length is at least 2; the
        // paper's Example 3.1 shows [1,2,3,4] is NOT a co-substring because
        // it starts at different positions.
        let t = [1u64, 2, 3, 4, 1, 5];
        let q = [1u64, 1, 2, 3, 4, 5];
        assert_eq!(lccs_len(&t, &q), 2);
    }

    #[test]
    fn figure_1c_example() {
        // |LCCS(H(o1), H(q))| = 5, |LCCS(H(o2), H(q))| = 3,
        // |LCCS(H(o3), H(q))| = 2 (paper, Figure 1(c)).
        let q = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let o1 = [1u64, 2, 4, 5, 6, 6, 7, 8];
        let o2 = [5u64, 2, 2, 4, 3, 6, 7, 8];
        let o3 = [3u64, 1, 3, 5, 5, 6, 4, 9];
        assert_eq!(lccs_len(&o1, &q), 5); // [5,6,7,8,1] wrapping? no: [6,7,8,1,2]
        assert_eq!(lccs_len(&o2, &q), 3);
        assert_eq!(lccs_len(&o3, &q), 2);
    }

    #[test]
    fn identical_strings_have_full_lccs() {
        let t = [4u64, 4, 2, 9];
        assert_eq!(lccs_len(&t, &t), 4);
    }

    #[test]
    fn disjoint_alphabets_have_zero_lccs() {
        let t = [1u64, 2, 3];
        let q = [4u64, 5, 6];
        assert_eq!(lccs_len(&t, &q), 0);
    }

    #[test]
    fn lccs_is_symmetric() {
        let t = [1u64, 7, 2, 7, 1, 9, 4, 2];
        let q = [1u64, 7, 7, 7, 2, 9, 4, 1];
        assert_eq!(lccs_len(&t, &q), lccs_len(&q, &t));
    }

    #[test]
    fn naive_topk_ordering() {
        let set = StringSet::from_rows(&[
            vec![1, 2, 3, 4], // LCCS 4 with q
            vec![9, 9, 9, 9], // LCCS 0
            vec![1, 2, 9, 9], // LCCS 2
        ]);
        let q = [1u64, 2, 3, 4];
        let got = k_lccs_naive(&set, &q, 3);
        assert_eq!(got, vec![(0, 4), (2, 2), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn zero_k_panics() {
        let set = StringSet::from_rows(&[vec![1]]);
        k_lccs_naive(&set, &[1], 0);
    }
}
