//! Circular-string primitives: storage, rotation-aware comparison, LCP.
//!
//! Definitions 3.1–3.2 of the paper operate on *rotations* of fixed-length
//! strings. Nothing here materializes a rotation: all comparisons walk the
//! original rows with a starting offset, split into two linear segments to
//! keep the inner loops free of modulo operations.

use std::cmp::Ordering;

/// A set of `n` strings of identical length `m` over `u64` symbols, stored
/// row-major in one flat allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringSet {
    n: usize,
    m: usize,
    data: Vec<u64>,
}

impl StringSet {
    /// Wraps a flat row-major buffer of `n` strings of length `m`.
    ///
    /// # Panics
    /// Panics if `m == 0` or the buffer length is not `n * m`.
    pub fn from_flat(n: usize, m: usize, data: Vec<u64>) -> Self {
        assert!(m > 0, "string length m must be positive");
        assert_eq!(data.len(), n * m, "buffer must hold exactly n*m symbols");
        Self { n, m, data }
    }

    /// Builds from explicit rows.
    ///
    /// # Panics
    /// Panics if rows are empty or have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<u64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one string");
        let m = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * m);
        for r in rows {
            assert_eq!(r.len(), m, "inconsistent string lengths");
            data.extend_from_slice(r);
        }
        Self::from_flat(rows.len(), m, data)
    }

    /// Number of strings `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the set holds no strings.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// String length `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Row `i` (unrotated).
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.data[i * self.m..(i + 1) * self.m]
    }

    /// Bytes of symbol storage (for index-size accounting).
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }

    /// The backing flat buffer.
    pub fn as_flat(&self) -> &[u64] {
        &self.data
    }

    /// Compares rotation `s` of row `ia` with rotation `s` of row `ib`
    /// lexicographically (the order used to build `I_{s+1}`).
    #[inline]
    pub fn cmp_rows(&self, ia: usize, ib: usize, s: usize) -> Ordering {
        cmp_shifted(self.row(ia), self.row(ib), s)
    }

    /// Compares rotation `s` of row `i` against rotation `s` of an external
    /// query string.
    #[inline]
    pub fn cmp_row_query(&self, i: usize, q: &[u64], s: usize) -> Ordering {
        cmp_shifted(self.row(i), q, s)
    }

    /// `|LCP(shift(row_i, s), shift(q, s))|`, capped at `m`.
    #[inline]
    pub fn lcp_row_query(&self, i: usize, q: &[u64], s: usize) -> usize {
        lcp_shifted(self.row(i), q, s)
    }
}

/// Lexicographic comparison of `shift(a, s)` vs `shift(b, s)` where both
/// strings have the same length and `s < len`.
#[inline]
pub fn cmp_shifted(a: &[u64], b: &[u64], s: usize) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(s < a.len());
    for t in s..a.len() {
        match a[t].cmp(&b[t]) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    for t in 0..s {
        match a[t].cmp(&b[t]) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    Ordering::Equal
}

/// `|LCP(shift(a, s), shift(b, s))|`, capped at the string length.
#[inline]
pub fn lcp_shifted(a: &[u64], b: &[u64], s: usize) -> usize {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(s < a.len());
    let m = a.len();
    let mut l = 0;
    for t in s..m {
        if a[t] != b[t] {
            return l;
        }
        l += 1;
    }
    for t in 0..s {
        if a[t] != b[t] {
            return l;
        }
        l += 1;
    }
    l
}

/// Materializes `shift(t, s)` — used by tests and the naive reference, never
/// by the hot path.
pub fn rotate(t: &[u64], s: usize) -> Vec<u64> {
    let s = s % t.len();
    let mut out = Vec::with_capacity(t.len());
    out.extend_from_slice(&t[s..]);
    out.extend_from_slice(&t[..s]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_example_from_paper() {
        // shift(T, i) = [t_{i+1}, ..., t_m, t_1, ..., t_i]
        let t = [1u64, 2, 3, 4];
        assert_eq!(rotate(&t, 0), vec![1, 2, 3, 4]);
        assert_eq!(rotate(&t, 1), vec![2, 3, 4, 1]);
        assert_eq!(rotate(&t, 3), vec![4, 1, 2, 3]);
    }

    #[test]
    fn cmp_shifted_matches_materialized() {
        let a = [3u64, 1, 4, 1, 5];
        let b = [2u64, 7, 1, 8, 2];
        for s in 0..5 {
            let want = rotate(&a, s).cmp(&rotate(&b, s));
            assert_eq!(cmp_shifted(&a, &b, s), want, "shift {s}");
        }
    }

    #[test]
    fn lcp_shifted_matches_materialized() {
        let a = [1u64, 2, 3, 9, 1, 2];
        let b = [1u64, 2, 3, 9, 9, 2];
        for s in 0..6 {
            let ra = rotate(&a, s);
            let rb = rotate(&b, s);
            let want = ra.iter().zip(&rb).take_while(|(x, y)| x == y).count();
            assert_eq!(lcp_shifted(&a, &b, s), want, "shift {s}");
        }
    }

    #[test]
    fn lcp_of_identical_is_m() {
        let a = [5u64; 7];
        assert_eq!(lcp_shifted(&a, &a, 3), 7);
        assert_eq!(cmp_shifted(&a, &a, 3), Ordering::Equal);
    }

    #[test]
    fn stringset_accessors() {
        let s = StringSet::from_rows(&[vec![1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.m(), 2);
        assert_eq!(s.row(1), &[3, 4]);
        assert_eq!(s.nbytes(), 6 * 8);
        assert_eq!(s.cmp_rows(0, 1, 0), Ordering::Less);
        assert_eq!(s.cmp_rows(0, 1, 1), Ordering::Less);
    }

    #[test]
    fn cmp_row_query_and_lcp() {
        let s = StringSet::from_rows(&[vec![1, 2, 4, 5]]);
        let q = [1u64, 2, 3, 4];
        assert_eq!(s.cmp_row_query(0, &q, 0), Ordering::Greater);
        assert_eq!(s.lcp_row_query(0, &q, 0), 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent string lengths")]
    fn ragged_rows_panic() {
        StringSet::from_rows(&[vec![1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "n*m symbols")]
    fn bad_flat_panics() {
        StringSet::from_flat(2, 3, vec![0; 5]);
    }
}
