//! Property-based tests of the CSA against the paper's definitions.
//!
//! The fast path (Algorithms 1–2) is checked against the naive oracle
//! (Definitions 3.1–3.3 / Fact 3.1) over randomized string sets, alphabet
//! sizes, and query distributions, including adversarial cases (tiny
//! alphabets → heavy ties and duplicate strings).

use csa::{circ, naive, Csa, StringSet};
use proptest::prelude::*;

fn string_set(max_n: usize, max_m: usize, max_sym: u64) -> impl Strategy<Value = Vec<Vec<u64>>> {
    (1..=max_n, 1..=max_m).prop_flat_map(move |(n, m)| {
        proptest::collection::vec(proptest::collection::vec(0..max_sym, m), n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fact 3.1: LCCS via max-over-rotations LCP equals the definitional
    /// maximum over materialized rotations.
    #[test]
    fn fact_3_1_lccs_equals_max_lcp((rows, q) in string_set(6, 8, 4).prop_flat_map(|rows| {
        let m = rows[0].len();
        (Just(rows), proptest::collection::vec(0u64..4, m))
    })) {
        let t = &rows[0];
        let want = (0..t.len()).map(|s| {
            let rt = circ::rotate(t, s);
            let rq = circ::rotate(&q, s);
            rt.iter().zip(&rq).take_while(|(a, b)| a == b).count()
        }).max().unwrap();
        prop_assert_eq!(naive::lccs_len(t, &q), want);
    }

    /// Algorithm 2 returns an exact k-LCCS answer: reported lengths are the
    /// true LCCS of each id and their multiset matches the oracle's top-k.
    #[test]
    fn csa_search_matches_naive((rows, q, k) in string_set(40, 10, 3).prop_flat_map(|rows| {
        let m = rows[0].len();
        let n = rows.len();
        (Just(rows), proptest::collection::vec(0u64..3, m), 1..=n)
    })) {
        let set = StringSet::from_rows(&rows);
        let csa = Csa::build(set.clone());
        let fast = csa.search(&q, k);
        let slow = naive::k_lccs_naive(&set, &q, k);
        prop_assert_eq!(fast.len(), k);
        for c in &fast {
            prop_assert_eq!(c.len as usize, naive::lccs_len(set.row(c.id as usize), &q));
        }
        let mut fl: Vec<u32> = fast.iter().map(|c| c.len).collect();
        let mut sl: Vec<u32> = slow.iter().map(|(_, l)| *l as u32).collect();
        fl.sort_unstable();
        sl.sort_unstable();
        prop_assert_eq!(fl, sl);
        // no duplicate ids
        let mut ids: Vec<u32> = fast.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), k);
    }

    /// Algorithm 1 invariants hold for arbitrary inputs (sortedness,
    /// permutation property, next-link consistency).
    #[test]
    fn build_invariants(rows in string_set(30, 8, 2)) {
        let csa = Csa::build(StringSet::from_rows(&rows));
        prop_assert!(csa.validate().is_ok());
    }

    /// Serialization round-trips bit-exactly.
    #[test]
    fn serialization_roundtrip(rows in string_set(12, 6, 4)) {
        let csa = Csa::build(StringSet::from_rows(&rows));
        let back = Csa::from_bytes(csa.to_bytes()).unwrap();
        prop_assert_eq!(back, csa);
    }

    /// The Lemma 3.1 narrowed anchoring is a pure optimization: anchors
    /// match the m-independent-binary-searches baseline exactly.
    #[test]
    fn narrowed_anchor_equals_simple((rows, q) in string_set(30, 8, 2).prop_flat_map(|rows| {
        let m = rows[0].len();
        (Just(rows), proptest::collection::vec(0u64..2, m))
    })) {
        let csa = Csa::build(StringSet::from_rows(&rows));
        let fast = csa.anchor(&q);
        let slow = csa.anchor_simple(&q);
        for s in 0..q.len() {
            prop_assert_eq!(fast.row(s), slow.row(s), "rotation {}", s);
        }
    }

    /// Fact 3.2 (the unimodality that justifies the cursor merge): for any
    /// sorted triple T1 ⪯ T2 ≺ T3, LCP(T2, Q) ≥ min(LCP(T1,Q), LCP(T3,Q)).
    #[test]
    fn fact_3_2_middle_string_lcp((rows, q) in string_set(3, 6, 3).prop_flat_map(|rows| {
        let m = rows[0].len();
        (Just(rows), proptest::collection::vec(0u64..3, m))
    })) {
        prop_assume!(rows.len() == 3);
        let mut sorted = rows.clone();
        sorted.sort();
        let lcp = |t: &Vec<u64>| t.iter().zip(&q).take_while(|(a, b)| a == b).count();
        let l1 = lcp(&sorted[0]);
        let l2 = lcp(&sorted[1]);
        let l3 = lcp(&sorted[2]);
        prop_assert!(l2 >= l1.min(l3));
    }
}
