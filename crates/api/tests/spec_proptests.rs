//! Property tests of the spec grammar and JSON codec: for every scheme,
//! `IndexSpec` → `Display` → `FromStr` → equal spec (and the same through
//! JSON), plus rejection properties for malformed strings.

use ann::spec::{schemes, IndexSpec, Scheme, SpecError, MAX_PARAM};
use proptest::prelude::*;

/// Strategy over all 12 scheme variants with in-range knobs.
fn any_scheme() -> impl Strategy<Value = Scheme> {
    (0usize..12, 1usize..=MAX_PARAM, 1usize..=MAX_PARAM).prop_map(|(which, a, b)| match which {
        0 => Scheme::Lccs { m: a },
        1 => Scheme::MpLccs { m: a },
        2 => Scheme::E2lsh { k_funcs: a, l_tables: b },
        3 => Scheme::MultiProbeLsh { k_funcs: a, l_tables: b },
        4 => Scheme::Falconn { k_funcs: a, l_tables: b },
        5 => Scheme::C2lsh { m: a, l: b },
        6 => Scheme::Qalsh { m: a, l: b },
        7 => Scheme::Srs { d_proj: a },
        8 => Scheme::LshForest { trees: a, depth: b },
        9 => Scheme::SkLsh { k_funcs: a, l_indexes: b },
        10 => Scheme::KdTree,
        _ => Scheme::Linear,
    })
}

/// Strategy over full specs: every scheme × assorted build options,
/// including the defaults (which Display omits).
fn any_spec() -> impl Strategy<Value = IndexSpec> {
    (any_scheme(), 0u32..=6, any::<u64>(), any::<bool>(), any::<bool>()).prop_map(
        |(scheme, w_exp, seed, default_w, default_seed)| {
            let mut spec = IndexSpec::new(scheme);
            if !default_w {
                // Powers of two are exactly representable, so Display/parse
                // can't lose bits; the exponent spread covers sub-1 widths.
                spec = spec.with_w(f64::powi(2.0, w_exp as i32 - 3));
            }
            if !default_seed {
                spec = spec.with_seed(seed);
            }
            spec
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_parse_round_trip(spec in any_spec()) {
        let text = spec.to_string();
        let back: IndexSpec = text.parse().expect("canonical form parses");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn json_round_trip(spec in any_spec()) {
        let json = spec.to_json();
        let back = IndexSpec::from_json(&json).expect("emitted json parses");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn display_is_canonical(spec in any_spec()) {
        // Reparsing the display form and re-displaying is a fixed point.
        let text = spec.to_string();
        let reparsed: IndexSpec = text.parse().expect("parses");
        prop_assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn unknown_scheme_names_are_rejected(spec in any_spec(), tag in 0u32..1000) {
        // Mangle the scheme token: no valid token ends in a digit group.
        let text = spec.to_string();
        let mangled = match text.split_once(':') {
            Some((tok, rest)) => format!("{tok}{tag}x:{rest}"),
            None => format!("{text}{tag}x"),
        };
        prop_assert!(matches!(
            mangled.parse::<IndexSpec>(),
            Err(SpecError::UnknownScheme(_))
        ));
    }

    #[test]
    fn duplicate_keys_are_rejected(spec in any_spec()) {
        // Append a duplicate of the spec's first key=value pair.
        let text = spec.to_string();
        if let Some((_, rest)) = text.split_once(':') {
            let first = rest.split(',').next().expect("at least one pair");
            let doubled = format!("{text},{first}");
            prop_assert!(matches!(
                doubled.parse::<IndexSpec>(),
                Err(SpecError::DuplicateKey(_))
            ));
        }
    }

    #[test]
    fn out_of_range_params_are_rejected(scheme in any_scheme(), over in 1usize..1000) {
        // Force each of the scheme's own knobs to 0 and to > MAX_PARAM.
        let token = scheme.token();
        for key in scheme.info().keys {
            for bad in [0usize, MAX_PARAM + over] {
                let text = format!("{token}:{key}={bad}");
                let err = text.parse::<IndexSpec>().expect_err("out of range");
                prop_assert!(
                    matches!(err, SpecError::OutOfRange { .. } | SpecError::MissingKey { .. }),
                    "{}: {}", text, err
                );
            }
        }
    }

    #[test]
    fn foreign_keys_are_rejected(spec in any_spec()) {
        // `probes` is a query knob, never an index knob — every scheme
        // must reject it (catches key-table drift).
        let text = spec.to_string();
        let with_foreign = if text.contains(':') {
            format!("{text},probes=8")
        } else {
            format!("{text}:probes=8")
        };
        prop_assert!(matches!(
            with_foreign.parse::<IndexSpec>(),
            Err(SpecError::UnknownKey { .. })
        ));
    }
}

#[test]
fn every_scheme_table_row_is_reachable_by_the_strategy() {
    // The strategy above matches on 0..12; if a 13th variant appears this
    // pins that the table, the strategy, and the enum stay in sync.
    assert_eq!(schemes().len(), 12);
}
