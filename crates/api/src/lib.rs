//! Uniform ANN-index interface for the LCCS-LSH reproduction.
//!
//! The paper (§6) benchmarks one algorithm against ~10 baselines over
//! identical query workloads. This crate gives every index in the
//! workspace — `LccsLsh`, `MpLccsLsh`, and all the baselines — one build
//! and query contract, [`AnnIndex`], so the evaluation harness, the
//! figure/table binaries, and serving-style callers drive them
//! generically (`&dyn AnnIndex` or `impl AnnIndex`) instead of through
//! per-algorithm signatures.
//!
//! * [`AnnIndex`] — object-safe query interface: the [`SearchRequest`] →
//!   [`SearchResponse`] contract (`search`, `search_with(scratch)`,
//!   `search_batch`) over the low-level `query`/`query_with`/`query_batch`
//!   primitives, plus `len`, `index_bytes`, `name`.
//! * [`request`] — the query contract itself: [`SearchRequest`] (top-k
//!   knobs + [`IdFilter`] predicate + `max_dist` range threshold, built
//!   via `SearchRequest::top_k(10).budget(128)`), [`SearchResponse`]
//!   (hits + [`SearchStats`]), and the one shared legality rule
//!   [`SearchRequest::validate`].
//! * [`BuildAnn`] — the build-from-dataset half, with per-algorithm
//!   parameter types (not object-safe; used generically).
//! * [`PersistAnn`] — the snapshot contract: indexes that round-trip
//!   through a byte payload so serving processes restore them without
//!   rebuilding.
//! * [`MutableAnn`] — the write contract: indexes that absorb
//!   insert/delete while serving and seal their write buffer into
//!   immutable segments (implemented by `crates/live`'s `LiveIndex`).
//! * [`spec`] — the construction contract: the self-describing
//!   [`IndexSpec`] (scheme + knobs + [`spec::BuildOptions`]) with its
//!   canonical textual grammar (`mp-lccs:m=64,seed=7`) and JSON form,
//!   consumed by the eval registry, the figure drivers and the serving
//!   layer's BUILD command.
//! * [`executor`] — the parallel batch executor behind the default
//!   [`AnnIndex::query_batch`]: chunked dynamic scheduling over scoped
//!   threads with one scratch per worker and deterministic, query-order
//!   output.
//!
//! Where this contract layer sits in the workspace is mapped in
//! `docs/architecture.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
mod mutable;
mod persist;
pub mod request;
pub mod spec;
mod traits;

pub use mutable::{MutableAnn, MutateError};
pub use persist::{PersistAnn, PersistError};
pub use request::{
    IdFilter, PlanChoice, RequestError, ResponseFields, SearchRequest, SearchResponse, SearchStats,
};
pub use spec::{IndexSpec, Scheme, SpecError};
pub use traits::{AnnIndex, BuildAnn, Scratch, SearchParams};
