//! The [`PersistAnn`] snapshot contract.
//!
//! Serving separates index *construction* from index *serving*: an index is
//! built once (the expensive hashing + CSA pass), snapshotted to a byte
//! payload, and later restored instantly by any number of serving
//! processes. The payload carries everything except the raw vectors — the
//! dataset travels beside it (snapshot containers bundle the two), because
//! an ANN index is meaningless without the objects it indexes and the
//! vectors dominate the bytes anyway.
//!
//! The save side is object-safe so catalogs holding `Box<dyn PersistAnn>`
//! can checkpoint uniformly; the restore side is a static constructor
//! (`where Self: Sized`), dispatched by method name through the snapshot
//! registry in `eval::registry`.

use crate::traits::AnnIndex;
use dataset::Dataset;
use std::sync::Arc;

/// Errors raised when restoring a snapshot payload.
#[derive(Debug)]
pub enum PersistError {
    /// The payload does not start with the expected magic/version.
    BadMagic,
    /// The payload is structurally broken (truncated, field out of range).
    Malformed(String),
    /// The payload is well-formed but disagrees with the supplied dataset.
    DatasetMismatch(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "unrecognized snapshot payload"),
            PersistError::Malformed(m) => write!(f, "malformed snapshot payload: {m}"),
            PersistError::DatasetMismatch(m) => write!(f, "dataset mismatch: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// An [`AnnIndex`] that can round-trip through a byte payload.
///
/// Implementations must guarantee that a restored index answers every
/// query identically to the index it was saved from (given the same
/// dataset) — the end-to-end serving test enforces this bit for bit.
///
/// # Example
///
/// A toy scheme whose whole "structure" is a magic plus the row count
/// (real schemes serialize parameters + structure and re-sample their
/// hash functions from the persisted seed; the `AnnIndex` half is
/// elided):
///
/// ```
/// use ann::{AnnIndex, PersistAnn, PersistError, Scratch, SearchParams};
/// use dataset::{exact::Neighbor, Dataset};
/// use std::sync::Arc;
///
/// struct Echo { data: Arc<Dataset> }
/// # impl AnnIndex for Echo {
/// #     fn name(&self) -> &'static str { "Echo" }
/// #     fn len(&self) -> usize { self.data.len() }
/// #     fn index_bytes(&self) -> usize { 0 }
/// #     fn query_with(&self, q: &[f32], p: &SearchParams, _: &mut Scratch) -> Vec<Neighbor> {
/// #         let mut all: Vec<Neighbor> = (0..self.data.len() as u32)
/// #             .map(|id| Neighbor {
/// #                 id,
/// #                 dist: f64::from((self.data.get(id as usize)[0] - q[0]).abs()),
/// #             })
/// #             .collect();
/// #         all.sort_unstable();
/// #         all.truncate(p.k);
/// #         all
/// #     }
/// # }
///
/// impl PersistAnn for Echo {
///     fn snapshot_bytes(&self) -> Vec<u8> {
///         let mut out = b"ECHO".to_vec();
///         out.extend_from_slice(&(self.data.len() as u64).to_le_bytes());
///         out
///     }
///     fn restore(payload: &[u8], data: Arc<Dataset>) -> Result<Self, PersistError> {
///         if payload.len() < 12 || &payload[..4] != b"ECHO" {
///             return Err(PersistError::BadMagic);
///         }
///         let n = u64::from_le_bytes(payload[4..12].try_into().unwrap());
///         if n as usize != data.len() {
///             return Err(PersistError::DatasetMismatch(format!(
///                 "payload built over {n} rows, dataset has {}",
///                 data.len()
///             )));
///         }
///         Ok(Echo { data })
///     }
/// }
///
/// let data = Arc::new(Dataset::from_rows("d", &[vec![0.0], vec![1.0]]));
/// let idx = Echo { data: Arc::clone(&data) };
/// let restored = Echo::restore(&idx.snapshot_bytes(), data).unwrap();
/// let p = SearchParams::new(1, 8);
/// assert_eq!(restored.query(&[0.9], &p), idx.query(&[0.9], &p)); // bit-identical
/// ```
pub trait PersistAnn: AnnIndex {
    /// Serializes the index into a standalone payload. The dataset itself
    /// is *not* included; [`PersistAnn::restore`] re-attaches it.
    fn snapshot_bytes(&self) -> Vec<u8>;

    /// Restores an index from a payload produced by
    /// [`PersistAnn::snapshot_bytes`], attaching `data` (which must be the
    /// dataset the index was built over; shape is validated).
    fn restore(payload: &[u8], data: Arc<Dataset>) -> Result<Self, PersistError>
    where
        Self: Sized;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_error_displays() {
        assert_eq!(PersistError::BadMagic.to_string(), "unrecognized snapshot payload");
        assert!(PersistError::Malformed("x".into()).to_string().contains("x"));
        assert!(PersistError::DatasetMismatch("dim".into()).to_string().contains("dim"));
    }
}
