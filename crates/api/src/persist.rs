//! The [`PersistAnn`] snapshot contract.
//!
//! Serving separates index *construction* from index *serving*: an index is
//! built once (the expensive hashing + CSA pass), snapshotted to a byte
//! payload, and later restored instantly by any number of serving
//! processes. The payload carries everything except the raw vectors — the
//! dataset travels beside it (snapshot containers bundle the two), because
//! an ANN index is meaningless without the objects it indexes and the
//! vectors dominate the bytes anyway.
//!
//! The save side is object-safe so catalogs holding `Box<dyn PersistAnn>`
//! can checkpoint uniformly; the restore side is a static constructor
//! (`where Self: Sized`), dispatched by method name through the snapshot
//! registry in `eval::registry`.

use crate::traits::AnnIndex;
use dataset::Dataset;
use std::sync::Arc;

/// Errors raised when restoring a snapshot payload.
#[derive(Debug)]
pub enum PersistError {
    /// The payload does not start with the expected magic/version.
    BadMagic,
    /// The payload is structurally broken (truncated, field out of range).
    Malformed(String),
    /// The payload is well-formed but disagrees with the supplied dataset.
    DatasetMismatch(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "unrecognized snapshot payload"),
            PersistError::Malformed(m) => write!(f, "malformed snapshot payload: {m}"),
            PersistError::DatasetMismatch(m) => write!(f, "dataset mismatch: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// An [`AnnIndex`] that can round-trip through a byte payload.
///
/// Implementations must guarantee that a restored index answers every
/// query identically to the index it was saved from (given the same
/// dataset) — the end-to-end serving test enforces this bit for bit.
pub trait PersistAnn: AnnIndex {
    /// Serializes the index into a standalone payload. The dataset itself
    /// is *not* included; [`PersistAnn::restore`] re-attaches it.
    fn snapshot_bytes(&self) -> Vec<u8>;

    /// Restores an index from a payload produced by
    /// [`PersistAnn::snapshot_bytes`], attaching `data` (which must be the
    /// dataset the index was built over; shape is validated).
    fn restore(payload: &[u8], data: Arc<Dataset>) -> Result<Self, PersistError>
    where
        Self: Sized;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_error_displays() {
        assert_eq!(PersistError::BadMagic.to_string(), "unrecognized snapshot payload");
        assert!(PersistError::Malformed("x".into()).to_string().contains("x"));
        assert!(PersistError::DatasetMismatch("dim".into()).to_string().contains("dim"));
    }
}
