//! The [`AnnIndex`] / [`BuildAnn`] traits and their support types.

use crate::executor;
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use std::any::Any;
use std::sync::Arc;

/// Query-time knobs shared by every scheme.
///
/// Each algorithm interprets the two knobs through its own native
/// parameter (the mapping the paper's §6.4 grid searches sweep):
///
/// | Scheme | `budget` means | `probes` means |
/// |--------|----------------|----------------|
/// | LCCS-LSH | λ, candidates to verify | ignored |
/// | MP-LCCS-LSH | λ | perturbation probes (≥ 1) |
/// | E2LSH / LSH-Forest / SK-LSH | bucket-union candidate cap | ignored |
/// | Multi-Probe LSH / FALCONN | candidate cap | probe-sequence length |
/// | C2LSH / QALSH | βn collision-count slack | ignored |
/// | SRS | verification budget | ignored |
/// | Linear / kd-tree | ignored (exact) | ignored |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchParams {
    /// Neighbors to return.
    pub k: usize,
    /// Candidate budget (per-scheme meaning above).
    pub budget: usize,
    /// Probe count for multi-probe schemes; `0` = scheme default.
    pub probes: usize,
}

impl SearchParams {
    /// Top-`k` search with a candidate budget and no probing override.
    pub fn new(k: usize, budget: usize) -> Self {
        Self { k, budget, probes: 0 }
    }

    /// Sets the probe count (multi-probe schemes only).
    pub fn with_probes(mut self, probes: usize) -> Self {
        self.probes = probes;
        self
    }
}

/// Opaque per-thread query scratch.
///
/// Each index type stores whatever reusable state its query path needs
/// (CSA cursor arrays, dedup epoch stamps, hash buffers) behind `Any`, so
/// [`AnnIndex`] stays object-safe while the batch executor still reuses
/// allocations across the queries a worker thread answers. A scratch
/// belongs to the index that created it, but handing it to a different
/// index is safe: impls re-initialize the state when its type — or, via
/// [`Scratch::get_valid_with`], its shape (e.g. a dedup table sized for a
/// different dataset) — doesn't fit.
#[derive(Default)]
pub struct Scratch(Option<Box<dyn Any + Send>>);

impl Scratch {
    /// A scratch holding nothing; indexes that need state lazily install it
    /// on first use via [`Scratch::get_or_insert_with`].
    pub fn empty() -> Self {
        Self(None)
    }

    /// A scratch pre-seeded with `state`.
    pub fn new<T: Any + Send>(state: T) -> Self {
        Self(Some(Box::new(state)))
    }

    /// Returns the state as `T`, installing `make()` if the scratch is
    /// empty or currently holds a different type.
    pub fn get_or_insert_with<T: Any + Send>(&mut self, make: impl FnOnce() -> T) -> &mut T {
        self.get_valid_with(|_| true, make)
    }

    /// Like [`Scratch::get_or_insert_with`], but also reinstalls when the
    /// recovered state fails `valid` — the guard indexes use against
    /// same-typed scratch built for a different dataset (whose epoch-stamp
    /// tables would be the wrong length).
    pub fn get_valid_with<T: Any + Send>(
        &mut self,
        valid: impl FnOnce(&T) -> bool,
        make: impl FnOnce() -> T,
    ) -> &mut T {
        let compatible = match &self.0 {
            Some(b) => b.downcast_ref::<T>().is_some_and(valid),
            None => false,
        };
        if !compatible {
            self.0 = Some(Box::new(make()));
        }
        self.0
            .as_mut()
            .expect("just installed")
            .downcast_mut::<T>()
            .expect("just type-checked")
    }
}

/// A built approximate-nearest-neighbor index, queryable uniformly.
///
/// Every query follows the paper's two-phase flow (§4.1): a **search
/// phase** walks the index structure to collect candidate ids under the
/// scheme's budget (for LCCS-LSH: the `(λ + k − 1)`-LCCS search of
/// Algorithm 2 over the Circular Shift Array), then a **verification
/// phase** computes the exact metric distance of each candidate and keeps
/// the `k` nearest, ascending by true distance with ties broken by id.
/// Implementations return that verified top-`k` list.
///
/// The trait is object-safe: the evaluation harness holds indexes as
/// `Box<dyn AnnIndex>` and drives the paper's ~11 schemes through one
/// generic loop. Per-query state lives in an opaque [`Scratch`] so that
/// hot loops and the parallel batch executor can amortize allocations.
pub trait AnnIndex: Send + Sync {
    /// The method name as printed in the paper's legends (e.g.
    /// `"LCCS-LSH"`, `"E2LSH"`).
    fn name(&self) -> &'static str;

    /// Index footprint in bytes, excluding the raw vectors (the paper's
    /// index-size axis, Figures 6–7).
    fn index_bytes(&self) -> usize;

    /// Fresh reusable scratch for [`AnnIndex::query_with`].
    fn make_scratch(&self) -> Scratch {
        Scratch::empty()
    }

    /// Answers one c-k-ANNS query, reusing `scratch` across calls.
    ///
    /// # Panics
    /// Implementations panic if `params.k == 0` or the query dimension
    /// does not match the indexed dataset.
    fn query_with(&self, q: &[f32], params: &SearchParams, scratch: &mut Scratch)
        -> Vec<Neighbor>;

    /// Answers one query with throwaway scratch.
    fn query(&self, q: &[f32], params: &SearchParams) -> Vec<Neighbor> {
        let mut scratch = self.make_scratch();
        self.query_with(q, params, &mut scratch)
    }

    /// Answers a whole query set through the parallel batch executor
    /// (see [`executor::batch_query`]): chunked dynamic scheduling, one
    /// scratch per worker thread, results in query order and identical to
    /// sequential [`AnnIndex::query`] calls.
    fn query_batch(&self, queries: &Dataset, params: &SearchParams) -> Vec<Vec<Neighbor>> {
        executor::batch_query(self, queries, params)
    }
}

/// The build half of the contract: constructing an index over a dataset.
///
/// Separate from [`AnnIndex`] because the parameter type is
/// per-algorithm, which would break object safety; generic call sites
/// (registries, benchmarks) use `I: BuildAnn` and erase to
/// `Box<dyn AnnIndex>` afterwards.
pub trait BuildAnn: AnnIndex + Sized {
    /// Build-time parameters (hash-string length, table counts, …).
    type Params;

    /// Indexing phase: builds over `data`, verifying with `metric`.
    fn build_index(data: Arc<Dataset>, metric: Metric, params: &Self::Params) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_reinitializes_on_type_change() {
        let mut s = Scratch::empty();
        *s.get_or_insert_with(|| 1u32) += 5;
        assert_eq!(*s.get_or_insert_with(|| 0u32), 6, "state persists for same type");
        let v: &mut Vec<u8> = s.get_or_insert_with(|| vec![9u8]);
        assert_eq!(v, &vec![9u8], "type change reinstalls");
        assert_eq!(*s.get_or_insert_with(|| 0u32), 0, "and back");
    }

    #[test]
    fn search_params_builder() {
        let p = SearchParams::new(10, 128).with_probes(65);
        assert_eq!((p.k, p.budget, p.probes), (10, 128, 65));
    }
}
