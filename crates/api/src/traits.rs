//! The [`AnnIndex`] / [`BuildAnn`] traits and their support types.

use crate::executor;
use crate::request::{SearchRequest, SearchResponse, SearchStats};
use dataset::exact::Neighbor;
use dataset::{Dataset, Metric};
use std::any::Any;
use std::sync::Arc;
use std::time::Instant;

/// Query-time knobs shared by every scheme — the low-level carrier the
/// per-scheme `query_with` implementations consume.
///
/// Since the [`crate::request`] redesign this type is no longer the
/// public construction path: build a [`SearchRequest`] with its builder
/// (`SearchRequest::top_k(10).budget(128).probes(17)`) and derive the
/// triple via [`SearchRequest::params`]. The positional constructor is
/// kept for the scheme implementations and their unit tests.
///
/// Each algorithm interprets the two knobs through its own native
/// parameter (the mapping the paper's §6.4 grid searches sweep):
///
/// | Scheme | `budget` means | `probes` means |
/// |--------|----------------|----------------|
/// | LCCS-LSH | λ, candidates to verify | ignored |
/// | MP-LCCS-LSH | λ | perturbation probes (≥ 1) |
/// | E2LSH / LSH-Forest / SK-LSH | bucket-union candidate cap | ignored |
/// | Multi-Probe LSH / FALCONN | candidate cap | probe-sequence length |
/// | C2LSH / QALSH | βn collision-count slack | ignored |
/// | SRS | verification budget | ignored |
/// | Linear / kd-tree | ignored (exact) | ignored |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchParams {
    /// Neighbors to return.
    pub k: usize,
    /// Candidate budget (per-scheme meaning above).
    pub budget: usize,
    /// Probe count for multi-probe schemes; `0` = scheme default.
    pub probes: usize,
}

impl SearchParams {
    /// Top-`k` search with a candidate budget and no probing override.
    pub fn new(k: usize, budget: usize) -> Self {
        Self { k, budget, probes: 0 }
    }

    /// Sets the probe count (multi-probe schemes only).
    #[deprecated(
        note = "positional-knob builders were the footgun the SearchRequest redesign removed; \
                use SearchRequest::top_k(k).budget(b).probes(p).params() instead"
    )]
    pub fn with_probes(mut self, probes: usize) -> Self {
        self.probes = probes;
        self
    }
}

/// Opaque per-thread query scratch.
///
/// Each index type stores whatever reusable state its query path needs
/// (CSA cursor arrays, dedup epoch stamps, hash buffers) behind `Any`, so
/// [`AnnIndex`] stays object-safe while the batch executor still reuses
/// allocations across the queries a worker thread answers. A scratch
/// belongs to the index that created it, but handing it to a different
/// index is safe: impls re-initialize the state when its type — or, via
/// [`Scratch::get_valid_with`], its shape (e.g. a dedup table sized for a
/// different dataset) — doesn't fit.
#[derive(Default)]
pub struct Scratch(Option<Box<dyn Any + Send>>);

impl Scratch {
    /// A scratch holding nothing; indexes that need state lazily install it
    /// on first use via [`Scratch::get_or_insert_with`].
    pub fn empty() -> Self {
        Self(None)
    }

    /// A scratch pre-seeded with `state`.
    pub fn new<T: Any + Send>(state: T) -> Self {
        Self(Some(Box::new(state)))
    }

    /// Returns the state as `T`, installing `make()` if the scratch is
    /// empty or currently holds a different type.
    pub fn get_or_insert_with<T: Any + Send>(&mut self, make: impl FnOnce() -> T) -> &mut T {
        self.get_valid_with(|_| true, make)
    }

    /// Like [`Scratch::get_or_insert_with`], but also reinstalls when the
    /// recovered state fails `valid` — the guard indexes use against
    /// same-typed scratch built for a different dataset (whose epoch-stamp
    /// tables would be the wrong length).
    pub fn get_valid_with<T: Any + Send>(
        &mut self,
        valid: impl FnOnce(&T) -> bool,
        make: impl FnOnce() -> T,
    ) -> &mut T {
        let compatible = match &self.0 {
            Some(b) => b.downcast_ref::<T>().is_some_and(valid),
            None => false,
        };
        if !compatible {
            self.0 = Some(Box::new(make()));
        }
        self.0
            .as_mut()
            .expect("just installed")
            .downcast_mut::<T>()
            .expect("just type-checked")
    }
}

/// A built approximate-nearest-neighbor index, queryable uniformly.
///
/// Every query follows the paper's two-phase flow (§4.1): a **search
/// phase** walks the index structure to collect candidate ids under the
/// scheme's budget (for LCCS-LSH: the `(λ + k − 1)`-LCCS search of
/// Algorithm 2 over the Circular Shift Array), then a **verification
/// phase** computes the exact metric distance of each candidate and keeps
/// the `k` nearest, ascending by true distance with ties broken by id.
/// Implementations return that verified top-`k` list.
///
/// The trait is object-safe: the evaluation harness holds indexes as
/// `Box<dyn AnnIndex>` and drives the paper's ~11 schemes through one
/// generic loop. Per-query state lives in an opaque [`Scratch`] so that
/// hot loops and the parallel batch executor can amortize allocations.
///
/// # Example
///
/// Only `name`, `len`, `index_bytes`, and `query_with` are required; a
/// minimal implementation over the 1-d points `0..n` already drives
/// every entry point — `query`, the parallel `query_batch`, and the
/// filtered/range `search` path, whose default wraps `query_with`:
///
/// ```
/// use ann::{AnnIndex, Scratch, SearchParams, SearchRequest};
/// use dataset::exact::Neighbor;
///
/// struct Grid { n: usize }
///
/// impl AnnIndex for Grid {
///     fn name(&self) -> &'static str { "Grid" }
///     fn len(&self) -> usize { self.n }
///     fn index_bytes(&self) -> usize { 0 }
///     fn query_with(&self, q: &[f32], p: &SearchParams, _: &mut Scratch) -> Vec<Neighbor> {
///         let mut all: Vec<Neighbor> = (0..self.n as u32)
///             .map(|id| Neighbor { id, dist: (f64::from(id) - f64::from(q[0])).abs() })
///             .collect();
///         all.sort_unstable();   // Neighbor orders by (dist, id)
///         all.truncate(p.k);
///         all
///     }
/// }
///
/// let idx = Grid { n: 100 };
/// let hits = idx.query(&[41.4], &SearchParams::new(3, 64));
/// assert_eq!(hits[0].id, 41);
///
/// let resp = idx.search(&[41.4], &SearchRequest::top_k(3).max_dist(1.0));
/// assert_eq!(resp.hits.len(), 2);   // range search: only 41 and 42 are within 1.0
/// ```
pub trait AnnIndex: Send + Sync {
    /// The method name as printed in the paper's legends (e.g.
    /// `"LCCS-LSH"`, `"E2LSH"`).
    fn name(&self) -> &'static str;

    /// Number of indexed rows (the `n` that bounds a legal `k`; see
    /// [`SearchRequest::validate`]).
    fn len(&self) -> usize;

    /// Whether the index holds no rows (only the live index can).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index footprint in bytes, excluding the raw vectors (the paper's
    /// index-size axis, Figures 6–7).
    fn index_bytes(&self) -> usize;

    /// Fresh reusable scratch for [`AnnIndex::query_with`].
    fn make_scratch(&self) -> Scratch {
        Scratch::empty()
    }

    /// Answers one c-k-ANNS query, reusing `scratch` across calls.
    ///
    /// # Panics
    /// Implementations panic if `params.k == 0` or the query dimension
    /// does not match the indexed dataset.
    fn query_with(&self, q: &[f32], params: &SearchParams, scratch: &mut Scratch)
        -> Vec<Neighbor>;

    /// Answers one query with throwaway scratch.
    fn query(&self, q: &[f32], params: &SearchParams) -> Vec<Neighbor> {
        let mut scratch = self.make_scratch();
        self.query_with(q, params, &mut scratch)
    }

    /// Answers a whole query set through the parallel batch executor
    /// (see [`executor::batch_query`]): chunked dynamic scheduling, one
    /// scratch per worker thread, results in query order and identical to
    /// sequential [`AnnIndex::query`] calls.
    fn query_batch(&self, queries: &Dataset, params: &SearchParams) -> Vec<Vec<Neighbor>> {
        executor::batch_query(self, queries, params)
    }

    /// Answers one [`SearchRequest`], honoring its
    /// [`crate::request::IdFilter`] and `max_dist` threshold, reusing
    /// `scratch` across calls.
    ///
    /// The default implementation wraps the scheme's [`AnnIndex::query_with`]:
    /// with no filter and no threshold it is byte-identical to `query_with`
    /// (same candidates, same heap); with either capability present it
    /// over-fetches and post-filters, which is *exact* for the exact
    /// schemes (Linear, KD-Tree scan: a threshold widens the fetch to the
    /// full candidate set, an allowlist widens it by the non-allowed row
    /// count) and recall-preserving for the approximate ones. Schemes that
    /// can do better override this and apply the predicate inside their
    /// candidate loop (the LCCS schemes, the live index).
    ///
    /// The returned [`SearchStats`] from the default path are lower-bound
    /// estimates (see [`SearchStats`] docs); overriding schemes report
    /// exact counts.
    ///
    /// # Panics
    /// Same contract as [`AnnIndex::query_with`]: `req.k == 0` or a
    /// dimension mismatch panics. Callers that cannot panic (servers)
    /// run [`SearchRequest::validate`] first.
    fn search_with(&self, q: &[f32], req: &SearchRequest, scratch: &mut Scratch) -> SearchResponse {
        let t0 = Instant::now();
        let params = req.params();
        let mut resp = if req.filter.is_none() && req.max_dist.is_none() {
            let hits = self.query_with(q, &params, scratch);
            let seen = hits.len() as u64;
            SearchResponse {
                hits,
                stats: SearchStats {
                    candidates_scanned: seen,
                    heap_pushes: seen,
                    ..SearchStats::default()
                },
            }
        } else {
            // Over-fetch so post-hoc filtering cannot starve the top-k.
            // A threshold has no computable bound short of the whole
            // index; an id filter is bounded by how many rows it can
            // knock out of the prefix.
            let n = self.len();
            let k_eff = if req.max_dist.is_some() {
                n.max(params.k)
            } else {
                let knocked_out = match &req.filter {
                    Some(f) if f.is_allow() => {
                        // Only allowlist ids that actually name a row can
                        // survive filtering; out-of-range ids must still
                        // count as knocked out or the over-fetch shrinks
                        // and valid allowed rows get dropped. The list is
                        // sorted, so in-range ids form a prefix.
                        let in_range = f.ids().partition_point(|&id| (id as usize) < n);
                        n.saturating_sub(in_range)
                    }
                    Some(f) => f.ids().len(),
                    None => 0,
                };
                params.k.saturating_add(knocked_out).min(n.max(params.k))
            };
            let fetch = SearchParams { k: k_eff.max(1), ..params };
            let raw = self.query_with(q, &fetch, scratch);
            let seen = raw.len() as u64;
            let mut hits: Vec<Neighbor> = raw
                .into_iter()
                .filter(|h| req.filter.as_ref().is_none_or(|f| f.accepts(h.id)))
                .filter(|h| req.max_dist.is_none_or(|d| h.dist <= d))
                .collect();
            hits.truncate(params.k);
            let kept = hits.len() as u64;
            SearchResponse {
                hits,
                stats: SearchStats {
                    candidates_scanned: seen,
                    heap_pushes: kept,
                    ..SearchStats::default()
                },
            }
        };
        resp.stats.wall_micros = t0.elapsed().as_micros() as u64;
        resp
    }

    /// Answers one [`SearchRequest`] with throwaway scratch.
    fn search(&self, q: &[f32], req: &SearchRequest) -> SearchResponse {
        let mut scratch = self.make_scratch();
        self.search_with(q, req, &mut scratch)
    }

    /// Answers a whole query set under one [`SearchRequest`] through the
    /// parallel batch executor, in query order (see
    /// [`executor::batch_search`]; per-query request overrides go through
    /// [`executor::batch_search_with`]).
    fn search_batch(&self, queries: &Dataset, req: &SearchRequest) -> Vec<SearchResponse> {
        executor::batch_search(self, queries, req)
    }
}

/// The build half of the contract: constructing an index over a dataset.
///
/// Separate from [`AnnIndex`] because the parameter type is
/// per-algorithm, which would break object safety; generic call sites
/// (registries, benchmarks) use `I: BuildAnn` and erase to
/// `Box<dyn AnnIndex>` afterwards.
pub trait BuildAnn: AnnIndex + Sized {
    /// Build-time parameters (hash-string length, table counts, …).
    type Params;

    /// Indexing phase: builds over `data`, verifying with `metric`.
    fn build_index(data: Arc<Dataset>, metric: Metric, params: &Self::Params) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IdFilter;

    #[test]
    fn scratch_reinitializes_on_type_change() {
        let mut s = Scratch::empty();
        *s.get_or_insert_with(|| 1u32) += 5;
        assert_eq!(*s.get_or_insert_with(|| 0u32), 6, "state persists for same type");
        let v: &mut Vec<u8> = s.get_or_insert_with(|| vec![9u8]);
        assert_eq!(v, &vec![9u8], "type change reinstalls");
        assert_eq!(*s.get_or_insert_with(|| 0u32), 0, "and back");
    }

    #[test]
    fn search_params_builder() {
        #[allow(deprecated)]
        let p = SearchParams::new(10, 128).with_probes(65);
        assert_eq!((p.k, p.budget, p.probes), (10, 128, 65));
        // The replacement path produces the same triple without the
        // positional footgun.
        let q = SearchRequest::top_k(10).budget(128).probes(65).params();
        assert_eq!(p, q);
    }

    /// A deterministic toy index over the 1-d points `0, 1, …, n-1`
    /// (distance = |id - q[0]|), enough to exercise the default
    /// `search_with` over-fetch + post-filter path.
    struct TwigIndex {
        n: usize,
    }

    impl AnnIndex for TwigIndex {
        fn name(&self) -> &'static str {
            "Twig"
        }

        fn len(&self) -> usize {
            self.n
        }

        fn index_bytes(&self) -> usize {
            0
        }

        fn query_with(
            &self,
            q: &[f32],
            params: &SearchParams,
            _scratch: &mut Scratch,
        ) -> Vec<Neighbor> {
            assert!(params.k > 0, "k must be positive");
            let mut all: Vec<Neighbor> = (0..self.n as u32)
                .map(|id| Neighbor { id, dist: (f64::from(id) - f64::from(q[0])).abs() })
                .collect();
            all.sort_unstable();
            all.truncate(params.k);
            all
        }
    }

    #[test]
    fn default_search_matches_query_without_extras() {
        let idx = TwigIndex { n: 20 };
        let req = SearchRequest::top_k(5).budget(64);
        let resp = idx.search(&[7.2], &req);
        assert_eq!(resp.hits, idx.query(&[7.2], &req.params()));
        assert_eq!(resp.stats.candidates_scanned, 5);
        assert!(!idx.is_empty());
    }

    #[test]
    fn default_search_honors_allow_deny_and_threshold_exactly() {
        let idx = TwigIndex { n: 20 };
        // Allowlist: only even ids may answer.
        let evens: Vec<u32> = (0..20).filter(|i| i % 2 == 0).collect();
        let req = SearchRequest::top_k(3).budget(64).filter(IdFilter::allow(evens));
        let resp = idx.search(&[7.0], &req);
        assert_eq!(
            resp.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![6, 8, 4],
            "nearest even ids to 7, by distance then id"
        );
        // Denylist: the true nearest is forbidden, the runner-up answers.
        let req = SearchRequest::top_k(1).budget(64).filter(IdFilter::deny(vec![7]));
        assert_eq!(idx.search(&[7.0], &req).hits[0].id, 6);
        // Threshold: only rows within 1.5 of the query qualify.
        let req = SearchRequest::top_k(10).budget(64).max_dist(1.5);
        let resp = idx.search(&[7.0], &req);
        assert_eq!(resp.hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![7, 6, 8]);
        assert!(resp.hits.iter().all(|h| h.dist <= 1.5));
        // Filter + threshold compose.
        let req = SearchRequest::top_k(10)
            .budget(64)
            .max_dist(1.5)
            .filter(IdFilter::deny(vec![7]));
        let resp = idx.search(&[7.0], &req);
        assert_eq!(resp.hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![6, 8]);
    }

    #[test]
    fn allowlist_with_out_of_range_ids_keeps_the_overfetch_exact() {
        // Regression: ids beyond the index must count as knocked out when
        // sizing the over-fetch, or the few valid allowed rows fall
        // outside the fetched prefix and vanish from the answer.
        let idx = TwigIndex { n: 500 };
        let mut ids: Vec<u32> = (1000..1498).collect(); // 498 bogus ids
        ids.push(0);
        ids.push(7);
        let req = SearchRequest::top_k(2).budget(64).filter(IdFilter::allow(ids));
        let resp = idx.search(&[400.0], &req);
        assert_eq!(
            resp.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![7, 0],
            "the two real allowed rows must be found even though the query is far from them"
        );
    }

    #[test]
    fn default_search_batch_is_query_order_deterministic() {
        let idx = TwigIndex { n: 50 };
        let queries = Dataset::from_rows(
            "q",
            &(0..30).map(|i| vec![i as f32 * 1.7]).collect::<Vec<_>>(),
        );
        let req = SearchRequest::top_k(4).budget(8).filter(IdFilter::deny(vec![3, 9]));
        let batch = idx.search_batch(&queries, &req);
        assert_eq!(batch.len(), 30);
        for (qi, resp) in batch.iter().enumerate() {
            assert_eq!(resp.hits, idx.search(queries.get(qi), &req).hits, "query {qi}");
        }
    }
}
