//! The [`MutableAnn`] contract: indexes that absorb writes while serving.
//!
//! Every structure behind [`AnnIndex`](crate::AnnIndex) so far is frozen
//! at construction — the CSA-backed schemes cannot take an insert without
//! a full rebuild. A mutable index layers an update path *around* such
//! frozen structures (the LSM-style memtable + sealed-segment design in
//! `crates/live`): writes land in a mutable buffer, reads fan out across
//! the buffer and the sealed parts, and a background **seal** turns the
//! buffer into one more frozen structure.
//!
//! The trait is object-safe on purpose: a serving catalog holds mutable
//! entries as `&mut dyn MutableAnn` next to its `Box<dyn AnnIndex>`
//! statics and drives INSERT/DELETE/FLUSH generically. Mutation takes
//! `&mut self` — callers that serve concurrently wrap the index in a
//! `RwLock` (single-writer mutation, shared-read queries), which is
//! exactly what `serve`'s live catalog entries do.

use crate::traits::AnnIndex;
use dataset::Dataset;

/// Errors raised by [`MutableAnn`] mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// The inserted rows' dimensionality does not match the index.
    DimMismatch {
        /// Dimensionality the index was created with.
        expected: usize,
        /// Dimensionality of the offered rows.
        got: usize,
    },
    /// An explicit insert id is already live in the index.
    IdInUse(u32),
    /// The id space is exhausted (auto-assignment would wrap).
    IdExhausted,
    /// The explicit id list is unusable (wrong length, duplicates).
    BadIds(String),
    /// Sealing failed: the segment builder rejected the configuration.
    Build(String),
    /// A persisted state could not be reassembled into a live index.
    State(String),
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutateError::DimMismatch { expected, got } => {
                write!(f, "dimension mismatch: index has dim {expected}, rows have {got}")
            }
            MutateError::IdInUse(id) => write!(f, "id {id} is already live in the index"),
            MutateError::IdExhausted => write!(f, "id space exhausted (u32 ids)"),
            MutateError::BadIds(m) => write!(f, "bad id list: {m}"),
            MutateError::Build(m) => write!(f, "segment build failed: {m}"),
            MutateError::State(m) => write!(f, "bad live-index state: {m}"),
        }
    }
}

impl std::error::Error for MutateError {}

/// An [`AnnIndex`] that also absorbs writes: the contract behind the
/// serving layer's INSERT / DELETE / FLUSH commands.
///
/// Ids are stable, external `u32` handles (the same id space
/// [`Neighbor`](dataset::exact::Neighbor) reports): once `insert`
/// assigns or accepts an id, every query returns that id for that row
/// until it is deleted — across seals and compactions, however the
/// implementation shuffles rows internally.
///
/// # Example
///
/// A toy 1-d implementation (the production one is `crates/live`'s
/// `LiveIndex`; the `AnnIndex` half is elided here):
///
/// ```
/// use ann::{AnnIndex, MutableAnn, MutateError, Scratch, SearchParams};
/// use dataset::{exact::Neighbor, Dataset};
///
/// struct Toy { rows: Vec<(u32, f32)>, next: u32 }
/// # impl AnnIndex for Toy {
/// #     fn name(&self) -> &'static str { "Toy" }
/// #     fn len(&self) -> usize { self.rows.len() }
/// #     fn index_bytes(&self) -> usize { 0 }
/// #     fn query_with(&self, q: &[f32], p: &SearchParams, _: &mut Scratch) -> Vec<Neighbor> {
/// #         let mut all: Vec<Neighbor> = self.rows.iter()
/// #             .map(|&(id, x)| Neighbor { id, dist: f64::from((x - q[0]).abs()) })
/// #             .collect();
/// #         all.sort_unstable();
/// #         all.truncate(p.k);
/// #         all
/// #     }
/// # }
///
/// impl MutableAnn for Toy {
///     fn insert(&mut self, rows: &Dataset, ids: Option<&[u32]>) -> Result<Vec<u32>, MutateError> {
///         let mut out = Vec::new();
///         for i in 0..rows.len() {
///             let id = match ids {
///                 Some(ids) => ids[i],
///                 None => { self.next += 1; self.next - 1 }
///             };
///             if self.rows.iter().any(|&(live, _)| live == id) {
///                 return Err(MutateError::IdInUse(id));
///             }
///             self.rows.push((id, rows.get(i)[0]));
///             out.push(id);
///         }
///         Ok(out)
///     }
///     fn delete(&mut self, ids: &[u32]) -> usize {
///         let before = self.rows.len();
///         self.rows.retain(|(id, _)| !ids.contains(id));
///         before - self.rows.len()
///     }
///     fn seal(&mut self) -> Result<bool, MutateError> { Ok(false) } // nothing buffered
///     fn live_len(&self) -> usize { self.rows.len() }
/// }
///
/// let mut idx = Toy { rows: Vec::new(), next: 0 };
/// let ids = idx.insert(&Dataset::from_rows("r", &[vec![1.0], vec![2.0]]), None)?;
/// assert_eq!(ids, vec![0, 1]);                  // auto-assigned, ascending
/// assert_eq!(idx.delete(&[0, 9]), 1);           // absent ids don't count
/// assert_eq!(idx.live_len(), 1);
/// let dup = idx.insert(&Dataset::from_rows("r", &[vec![3.0]]), Some(&[1]));
/// assert_eq!(dup, Err(MutateError::IdInUse(1))); // delete-then-insert to update
/// # Ok::<(), MutateError>(())
/// ```
pub trait MutableAnn: AnnIndex {
    /// Inserts `rows`, returning the id assigned to each row in order.
    ///
    /// `ids` supplies explicit external ids (one per row); `None`
    /// auto-assigns ascending fresh ids. Inserting an id that is
    /// currently live is an error — delete it first (delete + re-insert
    /// is the update idiom, and re-using a deleted id is allowed).
    fn insert(&mut self, rows: &Dataset, ids: Option<&[u32]>) -> Result<Vec<u32>, MutateError>;

    /// Deletes ids, returning how many were actually live. Deleting an
    /// absent id is not an error — it simply does not count.
    fn delete(&mut self, ids: &[u32]) -> usize;

    /// Freezes the current write buffer into an immutable searchable
    /// segment. Returns `true` when a segment was sealed, `false` when
    /// there was nothing to seal. A no-op seal still discards buffered
    /// tombstoned rows.
    fn seal(&mut self) -> Result<bool, MutateError>;

    /// Number of live (inserted and not deleted) rows.
    fn live_len(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole point of the trait: it must stay object-safe so catalogs
    // can hold `&mut dyn MutableAnn`.
    fn _object_safe(x: &mut dyn MutableAnn) -> usize {
        x.live_len()
    }

    #[test]
    fn errors_display() {
        assert!(MutateError::DimMismatch { expected: 8, got: 4 }
            .to_string()
            .contains("dim 8"));
        assert!(MutateError::IdInUse(7).to_string().contains("7"));
        assert!(MutateError::IdExhausted.to_string().contains("exhausted"));
        assert!(MutateError::BadIds("dup".into()).to_string().contains("dup"));
        assert!(MutateError::Build("m".into()).to_string().contains("m"));
        assert!(MutateError::State("s".into()).to_string().contains("s"));
    }
}
