//! Parallel batch-query execution.
//!
//! Throughput-oriented serving answers queries in batches, not one at a
//! time. The executor here runs an index-agnostic `(index, scratch) →
//! result` closure over `n` work items with:
//!
//! * **chunked dynamic scheduling** — workers repeatedly claim the next
//!   chunk of indices from a shared atomic cursor, so a slow query (a
//!   dense CSA region, a deep probe sequence) never stalls the batch the
//!   way static partitioning would;
//! * **per-thread scratch reuse** — each worker builds one scratch
//!   (CSA cursors, dedup stamps, hash buffers) and reuses it for every
//!   query it claims, the same amortization the paper's single-threaded
//!   measurements get from `query_with`;
//! * **deterministic output ordering** — results land in per-slot cells
//!   indexed by query position, so the output equals the sequential loop's
//!   byte for byte regardless of thread interleaving.
//!
//! The scheduler is a dependency-free `std::thread::scope` pool rather
//! than a rayon pool: the build environment vendors all dependencies
//! offline, so rayon is gated out. The closure-level API below is shaped
//! so that swapping `par_map_scratch`'s body for
//! `rayon::iter::split`-based work stealing is a one-function change.

use crate::request::{SearchRequest, SearchResponse};
use crate::traits::{AnnIndex, Scratch, SearchParams};
use dataset::exact::Neighbor;
use dataset::Dataset;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Upper bound on worker threads (matches the cap the seed's ad-hoc batch
/// path used; beyond this, memory bandwidth dominates for ANN workloads).
const MAX_THREADS: usize = 16;

/// Indices a worker claims per trip to the shared cursor. Large enough to
/// keep contention negligible, small enough that tail imbalance stays
/// under one chunk per worker.
const CHUNK: usize = 16;

/// Worker threads the executor would use for a batch of `n` items.
pub fn worker_threads(n: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .min(MAX_THREADS)
        .min(n.max(1))
}

/// Runs `f(i, &mut scratch)` for every `i in 0..n` across worker threads
/// and returns the results in index order.
///
/// `make_scratch` runs once per worker; `f` must be pure with respect to
/// the scratch (reusing it only as an allocation cache) for the output to
/// be deterministic — every index in this workspace satisfies that by
/// construction because sequential `query` calls share the same contract.
pub fn par_map_scratch<R, S, MS, F>(n: usize, make_scratch: MS, f: F) -> Vec<R>
where
    R: Send + Sync,
    MS: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> R + Sync,
{
    let threads = worker_threads(n);
    if threads <= 1 {
        let mut scratch = make_scratch();
        return (0..n).map(|i| f(i, &mut scratch)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = make_scratch();
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + CHUNK).min(n) {
                        let out = f(i, &mut scratch);
                        let stored = slots[i].set(out).is_ok();
                        debug_assert!(stored, "slot {i} claimed twice");
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|cell| cell.into_inner().expect("cursor visited every slot"))
        .collect()
}

/// Answers every query in `queries` against `index`, in query order.
///
/// This is the implementation behind the default
/// [`AnnIndex::query_batch`]; free-standing so heterogeneous callers
/// (the eval harness's `Box<dyn AnnIndex>`, generic bench loops) can also
/// invoke it directly.
///
/// # Panics
/// Panics if the query dimension does not match the index's dataset
/// (surfaced by the index's own `query_with` assertion).
pub fn batch_query<I: AnnIndex + ?Sized>(
    index: &I,
    queries: &Dataset,
    params: &SearchParams,
) -> Vec<Vec<Neighbor>> {
    par_map_scratch(
        queries.len(),
        || index.make_scratch(),
        |i, scratch: &mut Scratch| index.query_with(queries.get(i), params, scratch),
    )
}

/// Answers every query in `queries` under one shared [`SearchRequest`],
/// in query order — the implementation behind the default
/// [`AnnIndex::search_batch`].
pub fn batch_search<I: AnnIndex + ?Sized>(
    index: &I,
    queries: &Dataset,
    req: &SearchRequest,
) -> Vec<SearchResponse> {
    batch_search_with(index, queries, |_| req)
}

/// [`batch_search`] with **per-query request overrides**: `req_for(i)`
/// names the request query `i` runs under, so one batch can mix plain
/// top-k questions with filtered or range questions (per-tenant
/// allowlists, per-query thresholds) without splitting the batch — the
/// scheduling, scratch reuse, and ordering guarantees are unchanged.
///
/// Requests are borrowed, not cloned: an [`crate::request::IdFilter`]
/// can be arbitrarily large, and the common case shares one request
/// across many queries.
pub fn batch_search_with<'r, I: AnnIndex + ?Sized>(
    index: &I,
    queries: &Dataset,
    req_for: impl Fn(usize) -> &'r SearchRequest + Sync,
) -> Vec<SearchResponse> {
    par_map_scratch(
        queries.len(),
        || index.make_scratch(),
        |i, scratch: &mut Scratch| index.search_with(queries.get(i), req_for(i), scratch),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_visits_all() {
        let out = par_map_scratch(1000, || 0u64, |i, acc| {
            *acc += 1;
            i * 3
        });
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let none: Vec<usize> = par_map_scratch(0, || (), |i, ()| i);
        assert!(none.is_empty());
        let one = par_map_scratch(1, || (), |i, ()| i + 7);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn per_query_overrides_reach_the_right_queries() {
        // A toy exact index over 1-d integer points.
        struct Line(usize);
        impl AnnIndex for Line {
            fn name(&self) -> &'static str {
                "Line"
            }
            fn len(&self) -> usize {
                self.0
            }
            fn index_bytes(&self) -> usize {
                0
            }
            fn query_with(
                &self,
                q: &[f32],
                params: &SearchParams,
                _s: &mut Scratch,
            ) -> Vec<Neighbor> {
                let mut all: Vec<Neighbor> = (0..self.0 as u32)
                    .map(|id| Neighbor { id, dist: (f64::from(id) - f64::from(q[0])).abs() })
                    .collect();
                all.sort_unstable();
                all.truncate(params.k);
                all
            }
        }
        let idx = Line(64);
        let queries =
            Dataset::from_rows("q", &(0..40).map(|i| vec![i as f32]).collect::<Vec<_>>());
        let base = SearchRequest::top_k(1).budget(8);
        let wide = SearchRequest::top_k(3).budget(8);
        // Every 4th query asks for three neighbors instead of one.
        let out = batch_search_with(&idx, &queries, |i| if i % 4 == 0 { &wide } else { &base });
        for (i, resp) in out.iter().enumerate() {
            let want = if i % 4 == 0 { 3 } else { 1 };
            assert_eq!(resp.hits.len(), want, "query {i}");
            assert_eq!(resp.hits[0].id, i as u32, "nearest point is the query itself");
        }
        // The shared-request form equals per-query with a constant.
        let shared = batch_search(&idx, &queries, &base);
        let manual = batch_search_with(&idx, &queries, |_| &base);
        assert_eq!(
            shared.iter().map(|r| r.hits.clone()).collect::<Vec<_>>(),
            manual.iter().map(|r| r.hits.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scratch_is_per_worker_not_per_item() {
        // The scratch counter each worker accumulates must never exceed the
        // total item count, and the sum of "first uses" equals the worker
        // count — indirectly checking scratch reuse.
        let n = 500;
        let firsts = std::sync::atomic::AtomicUsize::new(0);
        let out = par_map_scratch(
            n,
            || {
                firsts.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |_, seen| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(out.len(), n);
        let workers = firsts.load(Ordering::Relaxed);
        assert!(workers <= worker_threads(n), "scratch created once per worker");
        assert!(out.iter().any(|&c| c > 1) || workers >= n.min(worker_threads(n)));
    }
}
