//! The self-describing query contract: [`SearchRequest`] in,
//! [`SearchResponse`] out.
//!
//! Until this module existed every layer of the workspace spoke the bare
//! `(k, budget, probes)` triple, so adding a query capability meant
//! changing five signatures at once. A [`SearchRequest`] instead carries
//! the whole question — top-`k` knobs plus the two capabilities that the
//! ranked-answer literature motivates beyond plain top-k:
//!
//! * **predicate-filtered search** — an [`IdFilter`] restricting which
//!   object ids may appear in the answer (access-control lists, shard
//!   routing, "only documents from this user");
//! * **range / threshold search** — a `max_dist` cap making the answer
//!   "the nearest `k` objects *within distance `max_dist`*", possibly
//!   fewer than `k`.
//!
//! A [`SearchResponse`] pairs the verified hits with [`SearchStats`]
//! (candidates scanned, heap pushes, wall time), so budget tuning is
//! observable at every layer — the serving daemon accumulates the scanned
//! counter into its per-index STATS.
//!
//! Construction goes through the builder (`SearchRequest::top_k(10)
//! .budget(128).probes(17)`), which replaces the positional-knob footguns
//! of the older [`SearchParams`] type; [`SearchRequest::validate`] is the
//! one shared legality rule (`1 ≤ k ≤ rows`, finite threshold) that the
//! in-process harness, the live index, and the wire server all call
//! instead of re-implementing their own variants.

use crate::traits::SearchParams;
use dataset::exact::Neighbor;

/// Default candidate budget a bare `SearchRequest::top_k(k)` carries —
/// the mid-ladder λ the paper's sweeps center on.
pub const DEFAULT_BUDGET: usize = 128;

/// A predicate over external object ids, restricting which objects may
/// appear in a search answer.
///
/// The id list is stored sorted and deduplicated (the constructors
/// normalize), so [`IdFilter::accepts`] is a binary search — cheap enough
/// to sit inside a verification loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdFilter {
    /// `true` = allowlist (only these ids may match), `false` = denylist
    /// (everything but these ids may match).
    allow: bool,
    /// Sorted, deduplicated ids.
    ids: Vec<u32>,
}

impl IdFilter {
    fn normalized(allow: bool, mut ids: Vec<u32>) -> IdFilter {
        ids.sort_unstable();
        ids.dedup();
        IdFilter { allow, ids }
    }

    /// Only the given ids may appear in the answer.
    pub fn allow(ids: impl Into<Vec<u32>>) -> IdFilter {
        IdFilter::normalized(true, ids.into())
    }

    /// The given ids may *not* appear in the answer.
    pub fn deny(ids: impl Into<Vec<u32>>) -> IdFilter {
        IdFilter::normalized(false, ids.into())
    }

    /// Whether this is an allowlist (`true`) or a denylist (`false`).
    pub fn is_allow(&self) -> bool {
        self.allow
    }

    /// The sorted, deduplicated id list.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Does the filter let `id` through?
    #[inline]
    pub fn accepts(&self, id: u32) -> bool {
        self.ids.binary_search(&id).is_ok() == self.allow
    }
}

/// Which optional sections a [`SearchResponse`] should carry beyond the
/// hits themselves. On the wire these become bitflag-gated sections, so
/// a response never pays for a field nobody asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResponseFields {
    /// Return [`SearchStats`] alongside the hits. Indexes collect the
    /// counters either way (they are a few integer bumps); this flag is
    /// about what travels back to the caller.
    pub stats: bool,
}

/// What the recall planner decided for a query, reported inside
/// [`SearchStats`] when the request asked for a recall target instead of
/// explicit knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanChoice {
    /// The candidate budget the planner substituted.
    pub budget: u32,
    /// The probe count the planner substituted.
    pub probes: u32,
    /// The calibration table's measured recall at the chosen point (may
    /// fall short of the target when the target exceeds what the table
    /// can reach — the shortfall is reported, never hidden).
    pub predicted_recall: f64,
    /// The target actually planned for, after the overload dial: equals
    /// the requested target unless degradation stepped it down toward
    /// the configured recall floor.
    pub effective_target: f64,
}

/// Per-query execution counters, returned inside every
/// [`SearchResponse`].
///
/// The LCCS schemes and the live index report exact counts from inside
/// their candidate loops; the default trait implementation (which
/// delegates to the legacy `query_with`) reports the number of returned
/// candidates as a lower-bound estimate — still monotone in the budget,
/// which is what tuning needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchStats {
    /// Candidates the verification phase looked at (λ-bounded for the
    /// LCCS schemes; the whole dataset for the exact scans).
    pub candidates_scanned: u64,
    /// Pushes into the bounded top-`k` heap (a proxy for how contested
    /// the answer set was).
    pub heap_pushes: u64,
    /// Wall-clock time spent answering, in microseconds.
    pub wall_micros: u64,
    /// Candidates the SQ8 certified skip bound pruned before their
    /// full-width distance was computed (a subset of
    /// `candidates_scanned`; zero on paths without trained codes).
    /// Node-local telemetry: it feeds the METRICS exposition but does
    /// not travel in the wire stats section, whose layout is pinned.
    pub sq8_pruned: u64,
    /// What the recall planner chose, when the request carried a
    /// `target_recall` instead of explicit knobs (`None` for manual
    /// requests). Travels in its own flag-gated wire section.
    pub plan: Option<PlanChoice>,
}

impl SearchStats {
    /// Folds another unit's counters into this one (used by fan-out
    /// indexes that merge per-segment answers). Wall time takes the max
    /// rather than the sum: segments run concurrently.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.candidates_scanned += other.candidates_scanned;
        self.heap_pushes += other.heap_pushes;
        self.wall_micros = self.wall_micros.max(other.wall_micros);
        self.sq8_pruned += other.sq8_pruned;
        // Plans merge conservatively: the costliest knobs any unit chose,
        // the weakest promise any unit could make.
        self.plan = match (self.plan, other.plan) {
            (Some(a), Some(b)) => Some(PlanChoice {
                budget: a.budget.max(b.budget),
                probes: a.probes.max(b.probes),
                predicted_recall: a.predicted_recall.min(b.predicted_recall),
                effective_target: a.effective_target.min(b.effective_target),
            }),
            (a, b) => a.or(b),
        };
    }
}

/// A search answer: the verified top-`k` hits (ascending by true
/// distance, ties by id) plus the execution counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// The verified hits. With a `max_dist` threshold the list may be
    /// shorter than `k`; with an [`IdFilter`] every id satisfies it.
    pub hits: Vec<Neighbor>,
    /// Execution counters (see [`SearchStats`] for exactness caveats).
    pub stats: SearchStats,
}

/// Why a [`SearchRequest`] was rejected by [`SearchRequest::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// `k` was zero.
    ZeroK,
    /// `k` exceeds the number of indexed rows.
    KExceedsRows {
        /// The requested `k`.
        k: usize,
        /// Rows the index holds.
        rows: usize,
    },
    /// `max_dist` was NaN or negative.
    BadMaxDist(f64),
    /// `target_recall` was NaN, infinite, or outside `(0, 1]`.
    BadTargetRecall(f64),
    /// `target_recall` was combined with an explicit `budget` or
    /// `probes` — the two modes are mutually exclusive (the planner
    /// exists to *choose* the knobs).
    TargetRecallWithKnobs,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::ZeroK => write!(f, "k must be at least 1"),
            RequestError::KExceedsRows { k, rows } => {
                write!(f, "k = {k} exceeds the {rows} indexed vectors")
            }
            RequestError::BadMaxDist(d) => {
                write!(f, "max_dist must be a finite non-negative distance, got {d}")
            }
            RequestError::BadTargetRecall(t) => {
                write!(f, "target_recall must be in (0, 1], got {t}")
            }
            RequestError::TargetRecallWithKnobs => {
                write!(f, "target_recall is mutually exclusive with explicit budget/probes")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// One self-describing search question. See the module docs for the
/// capability model; see [`SearchRequest::top_k`] for construction.
///
/// ```
/// use ann::{IdFilter, SearchRequest};
///
/// let req = SearchRequest::top_k(10)        // neighbors to return
///     .budget(128)                          // candidate budget (λ for LCCS)
///     .probes(17)                           // multi-probe schemes only
///     .filter(IdFilter::deny(vec![3, 9]))   // tombstones / ACLs
///     .max_dist(1.5)                        // range search: hits within 1.5
///     .with_stats();                        // ask for the counters
///
/// assert!(req.validate(1_000).is_ok());     // 1 ≤ k ≤ rows, finite threshold
/// assert!(req.validate(5).is_err());        // k = 10 > 5 rows
///
/// let p = req.params();                     // the low-level knob triple
/// assert_eq!((p.k, p.budget, p.probes), (10, 128, 17));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// Neighbors to return (at most; a threshold may leave fewer).
    pub k: usize,
    /// Candidate budget (per-scheme meaning, λ for the LCCS schemes).
    pub budget: usize,
    /// Probe count for multi-probe schemes; `0` = scheme default.
    pub probes: usize,
    /// Restrict the answer to ids the filter accepts.
    pub filter: Option<IdFilter>,
    /// Only return hits with true distance ≤ this threshold.
    pub max_dist: Option<f64>,
    /// Optional response sections (stats on/off).
    pub fields: ResponseFields,
    /// Ask the serving layer to *plan* the knobs: answer with at least
    /// this recall, as cheaply as the index's calibration table allows.
    /// Mutually exclusive with explicit [`budget`](Self::budget) /
    /// [`probes`](Self::probes); requires a calibrated index.
    pub target_recall: Option<f64>,
    /// Whether `budget` or `probes` were set explicitly (the builder
    /// tracks this so [`validate`](Self::validate) can reject the
    /// knobs + target combination; a bare `top_k(k)` carries only the
    /// *default* budget, which does not count as explicit).
    pub knobs_set: bool,
}

impl SearchRequest {
    /// Starts a request for the nearest `k` objects, with the default
    /// candidate budget ([`DEFAULT_BUDGET`]) and no filter/threshold.
    pub fn top_k(k: usize) -> SearchRequest {
        SearchRequest {
            k,
            budget: DEFAULT_BUDGET,
            probes: 0,
            filter: None,
            max_dist: None,
            fields: ResponseFields::default(),
            target_recall: None,
            knobs_set: false,
        }
    }

    /// Sets the candidate budget.
    pub fn budget(mut self, budget: usize) -> SearchRequest {
        self.budget = budget;
        self.knobs_set = true;
        self
    }

    /// Sets the probe count (multi-probe schemes only; `0` = default).
    pub fn probes(mut self, probes: usize) -> SearchRequest {
        self.probes = probes;
        self.knobs_set = true;
        self
    }

    /// Asks the serving layer to plan the knobs for at least this
    /// recall (in `(0, 1]`). Mutually exclusive with explicit
    /// `budget`/`probes`; the server answers with a typed error when
    /// the index has no calibration table.
    pub fn target_recall(mut self, target: f64) -> SearchRequest {
        self.target_recall = Some(target);
        self
    }

    /// Restricts the answer to ids the filter accepts.
    pub fn filter(mut self, filter: IdFilter) -> SearchRequest {
        self.filter = Some(filter);
        self
    }

    /// Caps the answer at true distance `max_dist` (range search).
    pub fn max_dist(mut self, max_dist: f64) -> SearchRequest {
        self.max_dist = Some(max_dist);
        self
    }

    /// Asks for [`SearchStats`] in the response payload.
    pub fn with_stats(mut self) -> SearchRequest {
        self.fields.stats = true;
        self
    }

    /// The legacy `(k, budget, probes)` triple this request carries —
    /// what the per-scheme `query_with` implementations consume.
    pub fn params(&self) -> SearchParams {
        SearchParams { k: self.k, budget: self.budget, probes: self.probes }
    }

    /// The one request-legality rule every layer shares (in-process
    /// harness, live index, wire server): `1 ≤ k ≤ rows`, and a
    /// threshold, if present, is a finite non-negative distance.
    pub fn validate(&self, rows: usize) -> Result<(), RequestError> {
        if self.k == 0 {
            return Err(RequestError::ZeroK);
        }
        if self.k > rows {
            return Err(RequestError::KExceedsRows { k: self.k, rows });
        }
        if let Some(d) = self.max_dist {
            if !d.is_finite() || d < 0.0 {
                return Err(RequestError::BadMaxDist(d));
            }
        }
        if let Some(t) = self.target_recall {
            if !t.is_finite() || t <= 0.0 || t > 1.0 {
                return Err(RequestError::BadTargetRecall(t));
            }
            if self.knobs_set {
                return Err(RequestError::TargetRecallWithKnobs);
            }
        }
        Ok(())
    }
}

impl From<SearchParams> for SearchRequest {
    fn from(p: SearchParams) -> SearchRequest {
        SearchRequest::top_k(p.k).budget(p.budget).probes(p.probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_in_any_order() {
        let req = SearchRequest::top_k(10)
            .budget(256)
            .probes(17)
            .max_dist(1.5)
            .filter(IdFilter::allow(vec![3, 1, 2, 1]))
            .with_stats();
        assert_eq!((req.k, req.budget, req.probes), (10, 256, 17));
        assert_eq!(req.max_dist, Some(1.5));
        assert!(req.fields.stats);
        let f = req.filter.as_ref().unwrap();
        assert_eq!(f.ids(), &[1, 2, 3], "constructor sorts and dedups");
        assert_eq!(req.params(), SearchParams { k: 10, budget: 256, probes: 17 });
    }

    #[test]
    fn filters_accept_and_reject() {
        let allow = IdFilter::allow(vec![5, 1, 9]);
        assert!(allow.accepts(5) && allow.accepts(1) && allow.accepts(9));
        assert!(!allow.accepts(2));
        let deny = IdFilter::deny(vec![5, 1, 9]);
        assert!(!deny.accepts(5));
        assert!(deny.accepts(2) && deny.accepts(u32::MAX));
        assert!(IdFilter::allow(Vec::new()).ids().is_empty());
        assert!(!IdFilter::allow(Vec::new()).accepts(0), "empty allowlist matches nothing");
        assert!(IdFilter::deny(Vec::new()).accepts(0), "empty denylist matches everything");
    }

    #[test]
    fn validation_is_the_shared_rule() {
        assert_eq!(SearchRequest::top_k(0).validate(10), Err(RequestError::ZeroK));
        assert_eq!(
            SearchRequest::top_k(11).validate(10),
            Err(RequestError::KExceedsRows { k: 11, rows: 10 })
        );
        assert!(SearchRequest::top_k(10).validate(10).is_ok());
        assert!(SearchRequest::top_k(1).max_dist(0.0).validate(5).is_ok());
        assert!(matches!(
            SearchRequest::top_k(1).max_dist(f64::NAN).validate(5),
            Err(RequestError::BadMaxDist(_))
        ));
        assert!(matches!(
            SearchRequest::top_k(1).max_dist(-1.0).validate(5),
            Err(RequestError::BadMaxDist(_))
        ));
        assert!(matches!(
            SearchRequest::top_k(1).max_dist(f64::INFINITY).validate(5),
            Err(RequestError::BadMaxDist(_))
        ));
    }

    #[test]
    fn params_round_trip_through_requests() {
        let p = SearchParams { k: 3, budget: 64, probes: 9 };
        let req = SearchRequest::from(p);
        assert_eq!(req.params(), p);
        assert!(req.filter.is_none() && req.max_dist.is_none() && !req.fields.stats);
    }

    #[test]
    fn stats_absorb_sums_counts_and_maxes_wall() {
        let mut a = SearchStats {
            candidates_scanned: 10,
            heap_pushes: 3,
            wall_micros: 40,
            sq8_pruned: 2,
            plan: None,
        };
        let b = SearchStats {
            candidates_scanned: 5,
            heap_pushes: 4,
            wall_micros: 25,
            sq8_pruned: 1,
            plan: None,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            SearchStats {
                candidates_scanned: 15,
                heap_pushes: 7,
                wall_micros: 40,
                sq8_pruned: 3,
                plan: None,
            }
        );
    }

    #[test]
    fn stats_absorb_merges_plans_conservatively() {
        let choice = |budget, probes, predicted_recall, effective_target| PlanChoice {
            budget,
            probes,
            predicted_recall,
            effective_target,
        };
        let mut a = SearchStats { plan: Some(choice(64, 4, 0.95, 0.9)), ..Default::default() };
        let b = SearchStats { plan: Some(choice(128, 2, 0.92, 0.85)), ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.plan, Some(choice(128, 4, 0.92, 0.85)), "max knobs, min promises");
        let mut none = SearchStats::default();
        none.absorb(&a);
        assert_eq!(none.plan, a.plan, "a plan survives merging with a plan-less unit");
    }

    #[test]
    fn target_recall_validation() {
        assert!(SearchRequest::top_k(1).target_recall(0.9).validate(5).is_ok());
        assert!(SearchRequest::top_k(1).target_recall(1.0).validate(5).is_ok());
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    SearchRequest::top_k(1).target_recall(bad).validate(5),
                    Err(RequestError::BadTargetRecall(_))
                ),
                "target {bad} must be rejected"
            );
        }
        assert_eq!(
            SearchRequest::top_k(1).budget(64).target_recall(0.9).validate(5),
            Err(RequestError::TargetRecallWithKnobs)
        );
        assert_eq!(
            SearchRequest::top_k(1).probes(4).target_recall(0.9).validate(5),
            Err(RequestError::TargetRecallWithKnobs)
        );
        // The default budget a bare top_k carries is not "explicit".
        assert!(!SearchRequest::top_k(1).target_recall(0.9).knobs_set);
    }
}
