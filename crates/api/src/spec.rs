//! Self-describing index construction specs and their textual grammar.
//!
//! An [`IndexSpec`] is everything needed to (re)build one index instance:
//! the scheme with its index-time knobs ([`Scheme`], the paper's §6 grid
//! dimensions) plus the [`BuildOptions`] — bucket width `w` (footnote 11)
//! and RNG seed — that make a build bit-reproducible. Specs round-trip
//! through a canonical textual grammar
//!
//! ```text
//! spec   := scheme [ ":" pair ("," pair)* ]
//! pair   := key "=" value
//! scheme := lccs | mp-lccs | e2lsh | mp-lsh | falconn | c2lsh | qalsh
//!         | srs | lsh-forest | sk-lsh | kdtree | linear
//! ```
//!
//! e.g. `mp-lccs:m=64,seed=7` or `e2lsh:k=12,l=50,w=4`. Every scheme
//! accepts the common keys `w` (positive float) and `seed` (u64) on top
//! of its own knobs; [`help`] prints the full table. The same data also
//! round-trips through a small JSON object ([`IndexSpec::to_json`] /
//! [`IndexSpec::from_json`]) for config files and HTTP-ish frontends.
//!
//! This module is pure data — the factory that turns a spec into a live
//! index lives in `eval::registry`, and the serving layer embeds the
//! canonical string in `.snap` containers and the BUILD wire command.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Default bucket width when a spec does not say (`w=`): the value the
/// unit suites and quick sweeps use for the synthetic workloads.
pub const DEFAULT_W: f64 = 4.0;

/// Default RNG seed when a spec does not say (`seed=`).
pub const DEFAULT_SEED: u64 = 1;

/// Upper sanity bound on every integer knob; a parameter beyond this is
/// far outside the paper's grids and almost certainly a typo (and would
/// make a hostile BUILD request allocate absurdly).
pub const MAX_PARAM: usize = 1 << 20;

/// One scheme with its index-time knobs — the 12 construction variants
/// the workspace can build (the paper's §6.3 method set plus the exact
/// references).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// LCCS-LSH with hash-string length m.
    Lccs {
        /// Hash-string length.
        m: usize,
    },
    /// MP-LCCS-LSH (same index as LCCS; probes are a query knob).
    MpLccs {
        /// Hash-string length.
        m: usize,
    },
    /// E2LSH with K-concatenation and L tables.
    E2lsh {
        /// Concatenation length K.
        k_funcs: usize,
        /// Table count L.
        l_tables: usize,
    },
    /// Multi-Probe LSH (probes are a query knob).
    MultiProbeLsh {
        /// Concatenation length K.
        k_funcs: usize,
        /// Table count L.
        l_tables: usize,
    },
    /// FALCONN-style cross-polytope multiprobe (Angular only).
    Falconn {
        /// Concatenation length K.
        k_funcs: usize,
        /// Table count L.
        l_tables: usize,
    },
    /// C2LSH with m functions and collision threshold l.
    C2lsh {
        /// Function count m.
        m: usize,
        /// Collision threshold l.
        l: usize,
    },
    /// QALSH with m projections and collision threshold l.
    Qalsh {
        /// Projection count m.
        m: usize,
        /// Collision threshold l.
        l: usize,
    },
    /// SRS with d' projected dimensions.
    Srs {
        /// Projected dimensionality.
        d_proj: usize,
    },
    /// LSH-Forest with `trees` sorted label arrays of length `depth`.
    LshForest {
        /// Number of trees.
        trees: usize,
        /// Label length / max trie depth.
        depth: usize,
    },
    /// SK-LSH with `l_indexes` sorted compound-key arrays of length `k_funcs`.
    SkLsh {
        /// Compound-key length.
        k_funcs: usize,
        /// Number of sorted indexes.
        l_indexes: usize,
    },
    /// Exact kd-tree scan (Euclidean only; best-bin-first traversal).
    KdTree,
    /// Exact linear scan.
    Linear,
}

/// Build-time options shared by every scheme: the random-projection
/// bucket width (ignored by the angular/cross-polytope families) and the
/// RNG seed. Carried inside [`IndexSpec`] so one spec string fully
/// determines the built index, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuildOptions {
    /// Random-projection bucket width (per-dataset tuned, footnote 11).
    pub w: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions { w: DEFAULT_W, seed: DEFAULT_SEED }
    }
}

/// A fully self-describing index construction request: scheme + knobs +
/// [`BuildOptions`]. See the [module docs](self) for the grammar.
///
/// ```
/// use ann::IndexSpec;
///
/// let spec: IndexSpec = "mp-lccs:m=64,seed=7".parse().unwrap();
/// assert_eq!(spec.build.seed, 7);
///
/// // Display emits the canonical form; FromStr round-trips it.
/// let canon = spec.to_string();
/// assert_eq!(canon.parse::<IndexSpec>().unwrap(), spec);
///
/// // The same data round-trips through the JSON form too.
/// assert_eq!(IndexSpec::from_json(&spec.to_json()).unwrap(), spec);
///
/// // Errors are typed, not stringly: unknown schemes, unknown keys,
/// // duplicates, and out-of-range values all parse to a `SpecError`.
/// assert!("warp-drive:q=3".parse::<IndexSpec>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexSpec {
    /// Which scheme to build, with its index-time knobs.
    pub scheme: Scheme,
    /// Bucket width and seed.
    pub build: BuildOptions,
}

impl From<Scheme> for IndexSpec {
    fn from(scheme: Scheme) -> Self {
        IndexSpec { scheme, build: BuildOptions::default() }
    }
}

impl IndexSpec {
    /// Wraps a scheme with default [`BuildOptions`].
    pub fn new(scheme: Scheme) -> Self {
        scheme.into()
    }

    /// LCCS-LSH with hash-string length `m`.
    pub fn lccs(m: usize) -> Self {
        Scheme::Lccs { m }.into()
    }

    /// MP-LCCS-LSH with hash-string length `m`.
    pub fn mp_lccs(m: usize) -> Self {
        Scheme::MpLccs { m }.into()
    }

    /// E2LSH with concatenation `k_funcs` and `l_tables` tables.
    pub fn e2lsh(k_funcs: usize, l_tables: usize) -> Self {
        Scheme::E2lsh { k_funcs, l_tables }.into()
    }

    /// Multi-Probe LSH with concatenation `k_funcs` and `l_tables` tables.
    pub fn multi_probe(k_funcs: usize, l_tables: usize) -> Self {
        Scheme::MultiProbeLsh { k_funcs, l_tables }.into()
    }

    /// FALCONN-style cross-polytope with `k_funcs` rotations × `l_tables`.
    pub fn falconn(k_funcs: usize, l_tables: usize) -> Self {
        Scheme::Falconn { k_funcs, l_tables }.into()
    }

    /// C2LSH with `m` functions and collision threshold `l`.
    pub fn c2lsh(m: usize, l: usize) -> Self {
        Scheme::C2lsh { m, l }.into()
    }

    /// QALSH with `m` projections and collision threshold `l`.
    pub fn qalsh(m: usize, l: usize) -> Self {
        Scheme::Qalsh { m, l }.into()
    }

    /// SRS projecting to `d_proj` dimensions.
    pub fn srs(d_proj: usize) -> Self {
        Scheme::Srs { d_proj }.into()
    }

    /// LSH-Forest with `trees` tries of depth `depth`.
    pub fn lsh_forest(trees: usize, depth: usize) -> Self {
        Scheme::LshForest { trees, depth }.into()
    }

    /// SK-LSH with `l_indexes` sorted arrays of compound keys of length
    /// `k_funcs`.
    pub fn sk_lsh(k_funcs: usize, l_indexes: usize) -> Self {
        Scheme::SkLsh { k_funcs, l_indexes }.into()
    }

    /// Exact kd-tree scan (Euclidean only).
    pub fn kd_tree() -> Self {
        Scheme::KdTree.into()
    }

    /// Exact linear scan.
    pub fn linear() -> Self {
        Scheme::Linear.into()
    }

    /// Replaces the bucket width.
    pub fn with_w(mut self, w: f64) -> Self {
        self.build.w = w;
        self
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.build.seed = seed;
        self
    }

    /// Replaces both build options at once.
    pub fn with_build(mut self, build: BuildOptions) -> Self {
        self.build = build;
        self
    }

    /// The method name as printed in the paper's legends.
    pub fn method_name(&self) -> &'static str {
        self.scheme.method_name()
    }

    /// Short config description for reports (scheme knobs only — build
    /// options are reported separately by the harness).
    pub fn config_string(&self) -> String {
        self.scheme.config_string()
    }
}

impl Scheme {
    /// The method name as printed in the paper's legends.
    pub fn method_name(&self) -> &'static str {
        self.info().method
    }

    /// The grammar token (`lccs`, `mp-lccs`, …).
    pub fn token(&self) -> &'static str {
        self.info().token
    }

    /// Short config description for reports.
    pub fn config_string(&self) -> String {
        self.pairs()
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The static description of this scheme in [`schemes`].
    pub fn info(&self) -> &'static SchemeInfo {
        &schemes()[self.ordinal()]
    }

    fn ordinal(&self) -> usize {
        match self {
            Scheme::Lccs { .. } => 0,
            Scheme::MpLccs { .. } => 1,
            Scheme::E2lsh { .. } => 2,
            Scheme::MultiProbeLsh { .. } => 3,
            Scheme::Falconn { .. } => 4,
            Scheme::C2lsh { .. } => 5,
            Scheme::Qalsh { .. } => 6,
            Scheme::Srs { .. } => 7,
            Scheme::LshForest { .. } => 8,
            Scheme::SkLsh { .. } => 9,
            Scheme::KdTree => 10,
            Scheme::Linear => 11,
        }
    }

    /// The scheme's knobs as `(key, value)` pairs in canonical order.
    fn pairs(&self) -> Vec<(&'static str, usize)> {
        match *self {
            Scheme::Lccs { m } | Scheme::MpLccs { m } => vec![("m", m)],
            Scheme::E2lsh { k_funcs, l_tables }
            | Scheme::MultiProbeLsh { k_funcs, l_tables }
            | Scheme::Falconn { k_funcs, l_tables } => vec![("k", k_funcs), ("l", l_tables)],
            Scheme::C2lsh { m, l } | Scheme::Qalsh { m, l } => vec![("m", m), ("l", l)],
            Scheme::Srs { d_proj } => vec![("d", d_proj)],
            Scheme::LshForest { trees, depth } => vec![("trees", trees), ("depth", depth)],
            Scheme::SkLsh { k_funcs, l_indexes } => vec![("k", k_funcs), ("l", l_indexes)],
            Scheme::KdTree | Scheme::Linear => vec![],
        }
    }
}

/// Static description of one scheme for [`help`] and registry coverage
/// checks.
pub struct SchemeInfo {
    /// Grammar token (`mp-lccs`).
    pub token: &'static str,
    /// Paper-legend method name (`MP-LCCS-LSH`).
    pub method: &'static str,
    /// The scheme's own grammar keys, in canonical order.
    pub keys: &'static [&'static str],
    /// One-line description of the knobs.
    pub knobs: &'static str,
}

/// The full scheme table, in the paper's §6.3 method order. One row per
/// [`Scheme`] variant — [`help`] renders it and the eval registry asserts
/// coverage against it.
pub fn schemes() -> &'static [SchemeInfo] {
    &[
        SchemeInfo {
            token: "lccs",
            method: "LCCS-LSH",
            keys: &["m"],
            knobs: "m = hash-string length",
        },
        SchemeInfo {
            token: "mp-lccs",
            method: "MP-LCCS-LSH",
            keys: &["m"],
            knobs: "m = hash-string length (probes are a query knob)",
        },
        SchemeInfo {
            token: "e2lsh",
            method: "E2LSH",
            keys: &["k", "l"],
            knobs: "k = concatenation length, l = table count",
        },
        SchemeInfo {
            token: "mp-lsh",
            method: "Multi-Probe LSH",
            keys: &["k", "l"],
            knobs: "k = concatenation length, l = table count",
        },
        SchemeInfo {
            token: "falconn",
            method: "FALCONN",
            keys: &["k", "l"],
            knobs: "k = concatenation length, l = table count (Angular only)",
        },
        SchemeInfo {
            token: "c2lsh",
            method: "C2LSH",
            keys: &["m", "l"],
            knobs: "m = function count, l = collision threshold",
        },
        SchemeInfo {
            token: "qalsh",
            method: "QALSH",
            keys: &["m", "l"],
            knobs: "m = projection count, l = collision threshold",
        },
        SchemeInfo {
            token: "srs",
            method: "SRS",
            keys: &["d"],
            knobs: "d = projected dimensionality",
        },
        SchemeInfo {
            token: "lsh-forest",
            method: "LSH-Forest",
            keys: &["trees", "depth"],
            knobs: "trees = tree count, depth = label length",
        },
        SchemeInfo {
            token: "sk-lsh",
            method: "SK-LSH",
            keys: &["k", "l"],
            knobs: "k = compound-key length, l = sorted-index count",
        },
        SchemeInfo {
            token: "kdtree",
            method: "KD-Tree",
            keys: &[],
            knobs: "(exact, Euclidean only; no knobs)",
        },
        SchemeInfo {
            token: "linear",
            method: "Linear",
            keys: &[],
            knobs: "(exact; no knobs)",
        },
    ]
}

/// Renders the grammar cheat-sheet: every scheme token, its method name,
/// and its knobs, plus the common `w=`/`seed=` keys.
pub fn help() -> String {
    let mut out = String::from(
        "index spec grammar: scheme[:key=value,...]\n\
         common keys on every scheme: w=<float> (bucket width, default 4), \
         seed=<u64> (default 1)\n\nschemes:\n",
    );
    for s in schemes() {
        out.push_str(&format!("  {:<11} {:<16} {}\n", s.token, s.method, s.knobs));
    }
    out.push_str("\nexamples: lccs:m=64   mp-lccs:m=64,seed=7   e2lsh:k=12,l=50,w=3.5\n");
    out
}

// ----------------------------------------------------------- parse errors

/// Errors raised while parsing the textual grammar or the JSON form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The scheme token matches no known scheme.
    UnknownScheme(String),
    /// A key the scheme does not accept.
    UnknownKey {
        /// The scheme token being parsed.
        scheme: String,
        /// The offending key.
        key: String,
    },
    /// The same key given twice.
    DuplicateKey(String),
    /// A required scheme knob was not given.
    MissingKey {
        /// The scheme token being parsed.
        scheme: String,
        /// The missing key.
        key: String,
    },
    /// A value failed to parse as its key's type.
    BadValue {
        /// The key whose value is malformed.
        key: String,
        /// The raw value text.
        value: String,
    },
    /// A value parsed but is outside the accepted range.
    OutOfRange {
        /// The key whose value is out of range.
        key: String,
        /// The raw value text.
        value: String,
        /// What the accepted range is.
        expected: &'static str,
    },
    /// Structurally malformed input (empty spec, `key` with no `=`,
    /// broken JSON, …).
    Syntax(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownScheme(s) => {
                write!(f, "unknown scheme {s:?} (see ann::spec::help())")
            }
            SpecError::UnknownKey { scheme, key } => {
                write!(f, "scheme {scheme:?} does not accept key {key:?}")
            }
            SpecError::DuplicateKey(k) => write!(f, "duplicate key {k:?}"),
            SpecError::MissingKey { scheme, key } => {
                write!(f, "scheme {scheme:?} requires key {key:?}")
            }
            SpecError::BadValue { key, value } => {
                write!(f, "key {key:?} has malformed value {value:?}")
            }
            SpecError::OutOfRange { key, value, expected } => {
                write!(f, "key {key:?} value {value:?} out of range (expected {expected})")
            }
            SpecError::Syntax(m) => write!(f, "malformed spec: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

// -------------------------------------------------------------- Display

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.token())?;
        let pairs = self.pairs();
        for (i, (k, v)) in pairs.iter().enumerate() {
            write!(f, "{}{k}={v}", if i == 0 { ':' } else { ',' })?;
        }
        Ok(())
    }
}

impl fmt::Display for IndexSpec {
    /// The canonical grammar form. Build options at their defaults are
    /// omitted, so `lccs:m=64` — not `lccs:m=64,w=4,seed=1` — is the
    /// canonical spelling of a default-options spec.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.scheme)?;
        let mut sep = if self.scheme.pairs().is_empty() { ':' } else { ',' };
        if self.build.w != DEFAULT_W {
            write!(f, "{sep}w={}", self.build.w)?;
            sep = ',';
        }
        if self.build.seed != DEFAULT_SEED {
            write!(f, "{sep}seed={}", self.build.seed)?;
        }
        Ok(())
    }
}

// -------------------------------------------------------------- FromStr

/// Parses a `usize` knob, enforcing `1..=MAX_PARAM`.
fn parse_knob(key: &str, value: &str) -> Result<usize, SpecError> {
    let n: usize = value
        .parse()
        .map_err(|_| SpecError::BadValue { key: key.into(), value: value.into() })?;
    if n == 0 || n > MAX_PARAM {
        return Err(SpecError::OutOfRange {
            key: key.into(),
            value: value.into(),
            expected: "1..=2^20",
        });
    }
    Ok(n)
}

impl FromStr for IndexSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecError::Syntax("empty spec".into()));
        }
        let (token, rest) = match s.split_once(':') {
            Some((t, r)) => (t.trim(), Some(r)),
            None => (s, None),
        };
        let token = token.to_ascii_lowercase();
        let info = schemes()
            .iter()
            .find(|i| i.token == token)
            .ok_or_else(|| SpecError::UnknownScheme(token.clone()))?;

        // Collect pairs, catching duplicates and keys foreign to the scheme.
        let mut knobs: Vec<(&'static str, usize)> = Vec::new();
        let mut build = BuildOptions::default();
        let mut seen: Vec<String> = Vec::new();
        if let Some(rest) = rest {
            if rest.trim().is_empty() {
                return Err(SpecError::Syntax(format!("{token}: trailing ':' with no keys")));
            }
            for pair in rest.split(',') {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| SpecError::Syntax(format!("{pair:?} is not key=value")))?;
                let (key, value) = (key.trim().to_ascii_lowercase(), value.trim());
                if seen.contains(&key) {
                    return Err(SpecError::DuplicateKey(key));
                }
                seen.push(key.clone());
                match key.as_str() {
                    "w" => {
                        let w: f64 = value.parse().map_err(|_| SpecError::BadValue {
                            key: "w".into(),
                            value: value.into(),
                        })?;
                        if !(w.is_finite() && w > 0.0) {
                            return Err(SpecError::OutOfRange {
                                key: "w".into(),
                                value: value.into(),
                                expected: "a positive finite float",
                            });
                        }
                        build.w = w;
                    }
                    "seed" => {
                        build.seed = value.parse().map_err(|_| SpecError::BadValue {
                            key: "seed".into(),
                            value: value.into(),
                        })?;
                    }
                    _ => {
                        let canon = info
                            .keys
                            .iter()
                            .find(|k| **k == key)
                            .ok_or_else(|| SpecError::UnknownKey {
                                scheme: token.clone(),
                                key: key.clone(),
                            })?;
                        knobs.push((canon, parse_knob(&key, value)?));
                    }
                }
            }
        }

        let knob = |key: &'static str| -> Result<usize, SpecError> {
            knobs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|&(_, v)| v)
                .ok_or(SpecError::MissingKey { scheme: token.clone(), key: key.into() })
        };
        let scheme = match info.method {
            "LCCS-LSH" => Scheme::Lccs { m: knob("m")? },
            "MP-LCCS-LSH" => Scheme::MpLccs { m: knob("m")? },
            "E2LSH" => Scheme::E2lsh { k_funcs: knob("k")?, l_tables: knob("l")? },
            "Multi-Probe LSH" => {
                Scheme::MultiProbeLsh { k_funcs: knob("k")?, l_tables: knob("l")? }
            }
            "FALCONN" => Scheme::Falconn { k_funcs: knob("k")?, l_tables: knob("l")? },
            "C2LSH" => Scheme::C2lsh { m: knob("m")?, l: knob("l")? },
            "QALSH" => Scheme::Qalsh { m: knob("m")?, l: knob("l")? },
            "SRS" => Scheme::Srs { d_proj: knob("d")? },
            "LSH-Forest" => Scheme::LshForest { trees: knob("trees")?, depth: knob("depth")? },
            "SK-LSH" => Scheme::SkLsh { k_funcs: knob("k")?, l_indexes: knob("l")? },
            "KD-Tree" => Scheme::KdTree,
            "Linear" => Scheme::Linear,
            other => unreachable!("scheme table row {other:?} not constructed"),
        };
        Ok(IndexSpec { scheme, build })
    }
}

// ------------------------------------------------------------------ JSON

/// A parsed JSON value — just the subset the spec object needs.
enum Json {
    Str(String),
    /// Raw number text; converted per field so u64 seeds keep full
    /// precision instead of routing through f64.
    Num(String),
    Obj(Vec<(String, Json)>),
}

/// Minimal recursive-descent JSON parser for the spec object shape.
/// Workspace rule: no registry dependencies, so no serde_json — this
/// accepts arbitrary whitespace and key order over strings, numbers and
/// objects, which is everything [`IndexSpec::to_json`] emits.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, m: &str) -> SpecError {
        SpecError::Syntax(format!("json: {m} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SpecError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn string(&mut self) -> Result<String, SpecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.bytes.get(self.pos + 1).copied();
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 2;
                }
                Some(b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<String, SpecError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii").to_string())
    }

    fn value(&mut self) -> Result<Json, SpecError> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => self.object(),
            Some(_) => Ok(Json::Num(self.number()?)),
            None => Err(self.err("unexpected end")),
        }
    }

    fn object(&mut self) -> Result<Json, SpecError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(SpecError::DuplicateKey(key));
            }
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl IndexSpec {
    /// Serializes as a JSON object, e.g.
    /// `{"scheme":"e2lsh","params":{"k":12,"l":50},"w":4,"seed":7}`.
    /// `params` is omitted for knob-less schemes.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"scheme\":\"{}\"", json_escape(self.scheme.token()));
        let pairs = self.scheme.pairs();
        if !pairs.is_empty() {
            out.push_str(",\"params\":{");
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push('}');
        }
        out.push_str(&format!(",\"w\":{},\"seed\":{}}}", self.build.w, self.build.seed));
        out
    }

    /// Parses the [`IndexSpec::to_json`] object form (any key order,
    /// arbitrary whitespace; `params`, `w` and `seed` optional).
    pub fn from_json(s: &str) -> Result<IndexSpec, SpecError> {
        let mut p = JsonParser::new(s);
        let Json::Obj(fields) = p.object()? else { unreachable!("object() returns Obj") };
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(SpecError::Syntax("json: trailing bytes".into()));
        }

        // Re-render as the textual grammar and reuse its validation: the
        // two forms accept exactly the same spec space by construction —
        // provided no JSON string smuggles grammar metacharacters into
        // the spliced text (a scheme of `"lccs:m=4"` must be an unknown
        // scheme, not a reinterpreted spec).
        let clean = |s: &str| !s.contains([':', ',', '=']) && !s.contains(char::is_whitespace);
        let mut token: Option<String> = None;
        let mut text_pairs: Vec<(String, String)> = Vec::new();
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("scheme", Json::Str(t)) => {
                    if !clean(&t) {
                        return Err(SpecError::UnknownScheme(t));
                    }
                    token = Some(t);
                }
                ("scheme", _) => {
                    return Err(SpecError::BadValue { key, value: "non-string".into() })
                }
                ("params", Json::Obj(params)) => {
                    for (k, v) in params {
                        let Json::Num(n) = v else {
                            return Err(SpecError::BadValue { key: k, value: "non-number".into() });
                        };
                        if !clean(&k) {
                            return Err(SpecError::UnknownKey {
                                scheme: "json params".into(),
                                key: k,
                            });
                        }
                        text_pairs.push((k, n));
                    }
                }
                ("params", _) => {
                    return Err(SpecError::BadValue { key, value: "non-object".into() })
                }
                ("w" | "seed", Json::Num(n)) => text_pairs.push((key, n)),
                ("w" | "seed", _) => {
                    return Err(SpecError::BadValue { key, value: "non-number".into() })
                }
                (other, _) => {
                    return Err(SpecError::UnknownKey {
                        scheme: "json object".into(),
                        key: other.into(),
                    })
                }
            }
        }
        let token = token.ok_or(SpecError::Syntax("json: missing \"scheme\"".into()))?;
        let mut text = token;
        for (i, (k, v)) in text_pairs.iter().enumerate() {
            text.push(if i == 0 { ':' } else { ',' });
            text.push_str(&format!("{k}={v}"));
        }
        text.parse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One spec per scheme, with non-default knobs.
    fn zoo() -> Vec<IndexSpec> {
        vec![
            IndexSpec::lccs(64),
            IndexSpec::mp_lccs(128).with_seed(7),
            IndexSpec::e2lsh(12, 50),
            IndexSpec::multi_probe(4, 8).with_w(3.5),
            IndexSpec::falconn(2, 16),
            IndexSpec::c2lsh(32, 4),
            IndexSpec::qalsh(64, 16).with_w(0.125).with_seed(u64::MAX),
            IndexSpec::srs(6),
            IndexSpec::lsh_forest(8, 16),
            IndexSpec::sk_lsh(16, 4),
            IndexSpec::kd_tree(),
            IndexSpec::linear().with_seed(9),
        ]
    }

    #[test]
    fn display_from_str_round_trips_every_scheme() {
        for spec in zoo() {
            let text = spec.to_string();
            let back: IndexSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn canonical_forms_match_the_issue_examples() {
        assert_eq!(IndexSpec::lccs(64).to_string(), "lccs:m=64");
        assert_eq!(IndexSpec::e2lsh(12, 50).to_string(), "e2lsh:k=12,l=50");
        assert_eq!(IndexSpec::mp_lccs(64).with_seed(7).to_string(), "mp-lccs:m=64,seed=7");
        assert_eq!(IndexSpec::linear().to_string(), "linear");
        assert_eq!(IndexSpec::linear().with_w(2.5).to_string(), "linear:w=2.5");
    }

    #[test]
    fn parse_accepts_whitespace_case_and_any_key_order() {
        let spec: IndexSpec = "  E2LSH : l = 50 , K = 12 , SEED=3 ".parse().unwrap();
        assert_eq!(spec, IndexSpec::e2lsh(12, 50).with_seed(3));
    }

    #[test]
    fn unknown_scheme_is_rejected() {
        for bad in ["hnsw", "", "lccs2:m=4", ":m=4"] {
            let err = bad.parse::<IndexSpec>().unwrap_err();
            assert!(
                matches!(err, SpecError::UnknownScheme(_) | SpecError::Syntax(_)),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn duplicate_unknown_and_missing_keys_are_rejected() {
        assert!(matches!(
            "lccs:m=4,m=8".parse::<IndexSpec>(),
            Err(SpecError::DuplicateKey(k)) if k == "m"
        ));
        assert!(matches!(
            "lccs:m=4,probes=8".parse::<IndexSpec>(),
            Err(SpecError::UnknownKey { key, .. }) if key == "probes"
        ));
        assert!(matches!(
            "e2lsh:k=4".parse::<IndexSpec>(),
            Err(SpecError::MissingKey { key, .. }) if key == "l"
        ));
        assert!(matches!(
            "linear:m=4".parse::<IndexSpec>(),
            Err(SpecError::UnknownKey { .. })
        ));
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        assert!(matches!(
            "lccs:m=0".parse::<IndexSpec>(),
            Err(SpecError::OutOfRange { .. })
        ));
        assert!(matches!(
            format!("lccs:m={}", MAX_PARAM + 1).parse::<IndexSpec>(),
            Err(SpecError::OutOfRange { .. })
        ));
        assert!(matches!(
            "lccs:m=4,w=-1".parse::<IndexSpec>(),
            Err(SpecError::OutOfRange { .. })
        ));
        assert!(matches!(
            "lccs:m=4,w=nan".parse::<IndexSpec>(),
            Err(SpecError::OutOfRange { .. })
        ));
        assert!(matches!(
            "lccs:m=4.5".parse::<IndexSpec>(),
            Err(SpecError::BadValue { .. })
        ));
        assert!(matches!(
            "lccs:m=4,seed=-2".parse::<IndexSpec>(),
            Err(SpecError::BadValue { .. })
        ));
    }

    #[test]
    fn syntax_errors_are_rejected() {
        for bad in ["lccs:", "lccs:m", "lccs:m=4,", "lccs:=4"] {
            let err = bad.parse::<IndexSpec>().unwrap_err();
            assert!(
                matches!(err, SpecError::Syntax(_) | SpecError::UnknownKey { .. }),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn json_round_trips_every_scheme() {
        for spec in zoo() {
            let json = spec.to_json();
            let back = IndexSpec::from_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn json_accepts_whitespace_and_key_reorder_and_defaults() {
        let spec = IndexSpec::from_json(
            " { \"seed\" : 7 , \"params\" : { \"m\" : 64 } , \"scheme\" : \"mp-lccs\" } ",
        )
        .unwrap();
        assert_eq!(spec, IndexSpec::mp_lccs(64).with_seed(7));
        let spec = IndexSpec::from_json("{\"scheme\":\"linear\"}").unwrap();
        assert_eq!(spec, IndexSpec::linear());
    }

    #[test]
    fn json_rejections() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"scheme\":\"nope\"}",
            "{\"scheme\":\"lccs\"}",
            "{\"scheme\":\"lccs\",\"params\":{\"m\":64},\"extra\":1}",
            "{\"scheme\":\"lccs\",\"params\":{\"m\":64}} trailing",
            "{\"scheme\":\"lccs\",\"params\":{\"m\":64,\"m\":65}}",
            "{\"scheme\":5}",
        ] {
            assert!(IndexSpec::from_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn json_strings_cannot_smuggle_grammar_metacharacters() {
        // A scheme/key string containing grammar syntax must be rejected
        // as unknown, not spliced into the text and reinterpreted.
        assert!(matches!(
            IndexSpec::from_json("{\"scheme\":\"lccs:m=4\"}"),
            Err(SpecError::UnknownScheme(s)) if s == "lccs:m=4"
        ));
        assert!(matches!(
            IndexSpec::from_json("{\"scheme\":\"lccs\",\"params\":{\"m=4,seed\":9}}"),
            Err(SpecError::UnknownKey { key, .. }) if key == "m=4,seed"
        ));
        assert!(matches!(
            IndexSpec::from_json("{\"scheme\":\"lccs\",\"params\":{\"m m\":4}}"),
            Err(SpecError::UnknownKey { .. })
        ));
    }

    #[test]
    fn json_preserves_u64_seed_precision() {
        let spec = IndexSpec::lccs(4).with_seed(u64::MAX);
        assert_eq!(IndexSpec::from_json(&spec.to_json()).unwrap().build.seed, u64::MAX);
    }

    #[test]
    fn help_lists_every_scheme_token_and_method() {
        let h = help();
        for s in schemes() {
            assert!(h.contains(s.token), "help() misses token {}", s.token);
            assert!(h.contains(s.method), "help() misses method {}", s.method);
        }
    }

    #[test]
    fn scheme_table_rows_match_variant_tokens() {
        for spec in zoo() {
            let info = spec.scheme.info();
            assert_eq!(info.token, spec.scheme.token());
            assert_eq!(info.method, spec.scheme.method_name());
            let keys: Vec<&str> = spec.scheme.pairs().iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, info.keys, "{}", info.token);
        }
        assert_eq!(zoo().len(), schemes().len(), "one zoo entry per scheme row");
    }
}
