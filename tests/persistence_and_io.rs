//! Integration tests of persistence and IO across crates: CSA round-trips
//! through bytes, datasets round-trip through fvecs, and a rebuilt-from-disk
//! index answers identically.

use csa::Csa;
use dataset::{io, Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams};
use std::sync::Arc;

#[test]
fn csa_of_real_hash_strings_roundtrips() {
    let spec = SynthSpec::glove_like().with_n(500);
    let data = Arc::new(spec.generate(4));
    let idx = LccsLsh::build(data, Metric::Euclidean, &LccsParams::euclidean(10.0).with_m(24));
    let bytes = idx.csa().to_bytes();
    let back = Csa::from_bytes(bytes).expect("decode");
    assert_eq!(&back, idx.csa());
    // identical search behaviour
    let q: Vec<u64> = idx.csa().strings().row(17).to_vec();
    assert_eq!(back.search(&q, 5), idx.csa().search(&q, 5));
}

#[test]
fn dataset_fvecs_roundtrip_preserves_ann_results() {
    let spec = SynthSpec::sift_like().with_n(400);
    let data = spec.generate(8);
    let mut buf = Vec::new();
    io::write_fvecs_to(&mut buf, &data).unwrap();
    let reloaded = Arc::new(io::read_fvecs_from(&buf[..], "Sift", None).unwrap());

    let idx = LccsLsh::build(
        reloaded.clone(),
        Metric::Euclidean,
        &LccsParams::euclidean(30.0).with_m(16).with_seed(5),
    );
    let idx2 = LccsLsh::build(
        Arc::new(data.clone()),
        Metric::Euclidean,
        &LccsParams::euclidean(30.0).with_m(16).with_seed(5),
    );
    for i in [0usize, 100, 399] {
        let a = idx.query(reloaded.get(i), 5, 64);
        let b = idx2.query(data.get(i), 5, 64);
        assert_eq!(
            a.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
            b.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
            "fvecs round-trip must not change results"
        );
    }
}

#[test]
fn corrupt_index_payloads_are_rejected_not_misread() {
    let spec = SynthSpec::deep_like().with_n(100);
    let data = Arc::new(spec.generate(1));
    let idx = LccsLsh::build(data, Metric::Euclidean, &LccsParams::euclidean(20.0).with_m(8));
    let good = idx.csa().to_bytes().to_vec();
    // Flip the most-significant bits of every header byte (magic, n, m):
    // every such mutation must be rejected, never panic or misread.
    for pos in 0..20 {
        let mut bad = good.clone();
        bad[pos] ^= 0x80;
        assert!(
            Csa::from_bytes(&bad[..]).is_err(),
            "header mutation at byte {pos} must be rejected"
        );
    }
    // Truncations anywhere must be rejected too.
    for cut in [0usize, 10, good.len() / 2, good.len() - 1] {
        assert!(Csa::from_bytes(&good[..cut]).is_err());
    }
}
