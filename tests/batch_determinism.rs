//! Determinism under parallelism: `query_batch` through the chunked
//! work-stealing executor must return byte-identical results to sequential
//! `query` calls, for every scheme and regardless of thread interleaving.
//! Checked for both LCCS schemes and two structurally different baselines
//! (a table scheme with dedup scratch and a collision-counting scheme).

use baselines::{E2Lsh, E2lshParams, Qalsh, QalshParams};
use dataset::{Dataset, Metric, SynthSpec};
use lccs_lsh::{
    AnnIndex, LccsLsh, LccsParams, MpBuildParams, MpLccsLsh, MpParams, SearchParams, SearchRequest,
};
use lccs_lsh::BuildAnn;
use std::sync::Arc;

fn workload() -> (Arc<Dataset>, Dataset) {
    let spec = SynthSpec::new("det", 3000, 24).with_clusters(12);
    let data = Arc::new(spec.generate(0xd37));
    let queries = spec.generate_queries(177, 0xd38); // odd count: exercises the tail chunk
    (data, queries)
}

fn assert_batch_matches_sequential(index: &dyn AnnIndex, queries: &Dataset, params: &SearchParams) {
    let batch = index.query_batch(queries, params);
    assert_eq!(batch.len(), queries.len());
    let mut scratch = index.make_scratch();
    for (qi, q) in queries.iter().enumerate() {
        let seq = index.query_with(q, params, &mut scratch);
        assert_eq!(
            batch[qi],
            seq,
            "{}: parallel result diverged from sequential at query {qi}",
            index.name()
        );
    }
    // And a second batch run must reproduce the first exactly.
    assert_eq!(batch, index.query_batch(queries, params), "{}: batch not reproducible", index.name());
}

#[test]
fn lccs_batch_is_deterministic() {
    let (data, queries) = workload();
    let idx = LccsLsh::build_index(
        data,
        Metric::Euclidean,
        &LccsParams::euclidean(8.0).with_m(32),
    );
    assert_batch_matches_sequential(&idx, &queries, &SearchParams::new(10, 64));
}

#[test]
fn mp_lccs_batch_is_deterministic() {
    let (data, queries) = workload();
    let idx = MpLccsLsh::build_index(
        data,
        Metric::Euclidean,
        &MpBuildParams {
            lccs: LccsParams::euclidean(8.0).with_m(32),
            mp: MpParams { probes: 1, max_alts: 8 },
        },
    );
    assert_batch_matches_sequential(&idx, &queries, &SearchRequest::top_k(10).budget(64).probes(17).params());
}

#[test]
fn e2lsh_batch_is_deterministic() {
    let (data, queries) = workload();
    let idx = E2Lsh::build_index(
        data.clone(),
        Metric::Euclidean,
        &E2lshParams {
            k_funcs: 4,
            l_tables: 8,
            family: lsh::FamilyKind::RandomProjection,
            family_params: lsh::FamilyParams { w: 8.0 },
            seed: 3,
        },
    );
    assert_batch_matches_sequential(&idx, &queries, &SearchParams::new(10, 256));
}

#[test]
fn qalsh_batch_is_deterministic() {
    let (data, queries) = workload();
    let idx = Qalsh::build_index(
        data,
        Metric::Euclidean,
        &QalshParams { m: 16, l: 4, w: 8.0, c: 2.0, beta_n: 100, seed: 5 },
    );
    assert_batch_matches_sequential(&idx, &queries, &SearchParams::new(10, 128));
}

#[test]
fn foreign_scratch_is_detected_and_rebuilt() {
    // A scratch made by a small index must not corrupt (or panic) queries
    // against a larger index of the same type: the impls validate the
    // recovered state's shape and reinstall when it doesn't fit.
    let small_spec = SynthSpec::new("tiny", 100, 24).with_clusters(4);
    let small = Arc::new(small_spec.generate(1));
    let (data, queries) = workload();
    let params = SearchParams::new(5, 64);

    let small_lccs =
        LccsLsh::build_index(small.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(16));
    let big_lccs =
        LccsLsh::build_index(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0).with_m(16));
    let mut foreign = small_lccs.make_scratch();
    let q = queries.get(0);
    let via_foreign = AnnIndex::query_with(&big_lccs, q, &params, &mut foreign);
    assert_eq!(via_foreign, AnnIndex::query(&big_lccs, q, &params));

    let e2p = E2lshParams {
        k_funcs: 4,
        l_tables: 8,
        family: lsh::FamilyKind::RandomProjection,
        family_params: lsh::FamilyParams { w: 8.0 },
        seed: 3,
    };
    let small_e2 = E2Lsh::build_index(small, Metric::Euclidean, &e2p);
    let big_e2 = E2Lsh::build_index(data.clone(), Metric::Euclidean, &e2p);
    let mut foreign = small_e2.make_scratch();
    let via_foreign = AnnIndex::query_with(&big_e2, q, &params, &mut foreign);
    assert_eq!(via_foreign, AnnIndex::query(&big_e2, q, &params));
}

#[test]
fn inherent_query_batch_routes_through_executor() {
    // The richer QueryOutput-returning inherent batch path must agree with
    // sequential query_with too (it shares the same executor).
    let (data, queries) = workload();
    let idx = LccsLsh::build(
        data.clone(),
        Metric::Euclidean,
        &LccsParams::euclidean(8.0).with_m(32),
    );
    let batch = idx.query_batch(&queries, 5, 32);
    let mut scratch = idx.scratch();
    for (qi, q) in queries.iter().enumerate() {
        let seq = idx.query_with(q, 5, 32, &mut scratch);
        assert_eq!(batch[qi].neighbors, seq.neighbors, "query {qi}");
        assert_eq!(batch[qi].verified, seq.verified, "query {qi}");
    }
}
