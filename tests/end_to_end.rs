//! Cross-crate integration tests: every scheme end-to-end on every
//! surrogate dataset, both metrics, against exact ground truth.

use dataset::{ExactKnn, Metric, SynthSpec};
use eval::harness::{run_point, IndexSpec};
use eval::experiments::{load_workload, ExpOptions};

fn opts(n: usize) -> ExpOptions {
    ExpOptions { n, queries: 15, k: 10, seed: 7, ..Default::default() }
}

#[test]
fn every_method_reaches_reasonable_recall_on_every_dataset_euclidean() {
    let o = opts(2_000);
    for (spec, ty) in eval::experiments::suite_specs(o.n) {
        let wl = load_workload(&spec, ty, &o, Metric::Euclidean);
        for (spec, budget, probes, floor) in [
            (IndexSpec::Lccs { m: 32 }, 512usize, 0usize, 0.5f64),
            (IndexSpec::MpLccs { m: 32 }, 512, 33, 0.5),
            (IndexSpec::E2lsh { k_funcs: 4, l_tables: 32 }, 1024, 0, 0.4),
            (IndexSpec::MultiProbeLsh { k_funcs: 4, l_tables: 8 }, 1024, 64, 0.4),
            (IndexSpec::C2lsh { m: 32, l: 4 }, 512, 0, 0.5),
            (IndexSpec::Qalsh { m: 32, l: 8 }, 512, 0, 0.5),
            (IndexSpec::Srs { d_proj: 8 }, 512, 0, 0.5),
            (IndexSpec::Linear, 0, 0, 0.999),
        ] {
            let built = spec.build(&wl.data, Metric::Euclidean, wl.w, o.seed);
            let pt = run_point(&built, &wl.name, &wl.queries, &wl.gt, o.k, budget, probes);
            assert!(
                pt.recall >= floor,
                "{} on {}: recall {:.2} below floor {floor}",
                pt.method,
                wl.name,
                pt.recall
            );
            assert!(pt.ratio >= 1.0 - 1e-9 && pt.ratio < 2.0, "{} ratio {}", pt.method, pt.ratio);
        }
    }
}

#[test]
fn angular_methods_work_on_every_dataset() {
    let o = opts(2_000);
    for (spec, ty) in eval::experiments::suite_specs(o.n) {
        let wl = load_workload(&spec, ty, &o, Metric::Angular);
        for (spec, budget, probes, floor) in [
            (IndexSpec::Lccs { m: 32 }, 512usize, 0usize, 0.5f64),
            (IndexSpec::MpLccs { m: 32 }, 512, 33, 0.5),
            (IndexSpec::Falconn { k_funcs: 2, l_tables: 16 }, 1024, 64, 0.4),
            (IndexSpec::E2lsh { k_funcs: 1, l_tables: 16 }, 1024, 0, 0.4),
            (IndexSpec::C2lsh { m: 32, l: 2 }, 1024, 0, 0.4),
        ] {
            let built = spec.build(&wl.data, Metric::Angular, wl.w, o.seed);
            let pt = run_point(&built, &wl.name, &wl.queries, &wl.gt, o.k, budget, probes);
            assert!(
                pt.recall >= floor,
                "{} on {} (angular): recall {:.2} below floor {floor}",
                pt.method,
                wl.name,
                pt.recall
            );
        }
    }
}

#[test]
fn lccs_recall_is_budget_monotone_statistically() {
    let o = opts(3_000);
    let wl = load_workload(
        &SynthSpec::sift_like().with_n(o.n),
        "Image",
        &o,
        Metric::Euclidean,
    );
    let built = IndexSpec::Lccs { m: 64 }.build(&wl.data, Metric::Euclidean, wl.w, 1);
    let mut prev = 0.0;
    for budget in [4usize, 32, 256, 2048] {
        let pt = run_point(&built, &wl.name, &wl.queries, &wl.gt, 10, budget, 0);
        assert!(
            pt.recall + 1e-9 >= prev,
            "recall degraded with budget: {prev} -> {} at {budget}",
            pt.recall
        );
        prev = pt.recall;
    }
    assert!(prev > 0.8, "λ=2048 on n=3000 should recall > 80%, got {prev}");
}

#[test]
fn exact_duplicate_queries_always_find_themselves() {
    // Queries drawn from the database: every method must return the object
    // itself as the top-1 (distance 0) given a healthy budget.
    let spec = SynthSpec::deep_like().with_n(1_500);
    let data = std::sync::Arc::new(spec.generate(9));
    let queries = data.sample_queries(10, 4);
    let gt = ExactKnn::compute(&data, &queries, 1, Metric::Euclidean);
    for spec in [
        IndexSpec::Lccs { m: 32 },
        IndexSpec::E2lsh { k_funcs: 4, l_tables: 16 },
        IndexSpec::C2lsh { m: 32, l: 8 },
        IndexSpec::Qalsh { m: 32, l: 8 },
        IndexSpec::Srs { d_proj: 6 },
    ] {
        let built = spec.build(&data, Metric::Euclidean, 40.0, 3);
        for (qi, q) in queries.iter().enumerate() {
            let got = built.query(q, 1, 256, 0);
            assert!(
                !got.is_empty() && got[0].dist < 1e-6,
                "{:?} failed to find the duplicate of query {qi} (gt id {})",
                built.spec,
                gt.neighbors(qi)[0].id
            );
        }
    }
}

#[test]
fn metrics_are_consistent_across_facade() {
    // The facade crate re-exports everything; exercise the full pipeline
    // through `lccs_repro::` paths only.
    use lccs_repro::dataset::{Metric as M, SynthSpec as S};
    use lccs_repro::lccs_lsh::{LccsLsh, LccsParams};
    let spec = S::glove_like().with_n(800);
    let data = std::sync::Arc::new(spec.generate(2).normalized());
    let idx = LccsLsh::build(data.clone(), M::Angular, &LccsParams::angular().with_m(16));
    let out = idx.query(data.get(3), 5, 64);
    assert_eq!(out.neighbors[0].id, 3);
}
