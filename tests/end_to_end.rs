//! Cross-crate integration tests: every scheme end-to-end on every
//! surrogate dataset, both metrics, against exact ground truth.

use ann::SearchParams;
use dataset::{ExactKnn, Metric, SynthSpec};
use eval::experiments::{load_workload, ExpOptions};
use eval::harness::{build_spec, run_point, IndexSpec};

fn opts(n: usize) -> ExpOptions {
    ExpOptions { n, queries: 15, k: 10, seed: 7, ..Default::default() }
}

#[test]
fn every_method_reaches_reasonable_recall_on_every_dataset_euclidean() {
    let o = opts(2_000);
    for (spec, ty) in eval::experiments::suite_specs(o.n) {
        let wl = load_workload(&spec, ty, &o, Metric::Euclidean);
        for (spec, budget, probes, floor) in [
            (IndexSpec::lccs(32), 512usize, 0usize, 0.5f64),
            (IndexSpec::mp_lccs(32), 512, 33, 0.5),
            (IndexSpec::e2lsh(4, 32), 1024, 0, 0.4),
            (IndexSpec::multi_probe(4, 8), 1024, 64, 0.4),
            (IndexSpec::c2lsh(32, 4), 512, 0, 0.5),
            (IndexSpec::qalsh(32, 8), 512, 0, 0.5),
            (IndexSpec::srs(8), 512, 0, 0.5),
            (IndexSpec::kd_tree(), 0, 0, 0.999),
            (IndexSpec::linear(), 0, 0, 0.999),
        ] {
            let spec = spec.with_w(wl.w).with_seed(o.seed);
            let built = build_spec(&spec, &wl.data, Metric::Euclidean)
                .unwrap_or_else(|e| panic!("building {spec}: {e}"));
            let pt = run_point(&built, &wl.name, &wl.queries, &wl.gt, o.k, budget, probes);
            assert!(
                pt.recall >= floor,
                "{} on {}: recall {:.2} below floor {floor}",
                pt.method,
                wl.name,
                pt.recall
            );
            assert!(pt.ratio >= 1.0 - 1e-9 && pt.ratio < 2.0, "{} ratio {}", pt.method, pt.ratio);
        }
    }
}

#[test]
fn angular_methods_work_on_every_dataset() {
    let o = opts(2_000);
    for (spec, ty) in eval::experiments::suite_specs(o.n) {
        let wl = load_workload(&spec, ty, &o, Metric::Angular);
        for (spec, budget, probes, floor) in [
            (IndexSpec::lccs(32), 512usize, 0usize, 0.5f64),
            (IndexSpec::mp_lccs(32), 512, 33, 0.5),
            (IndexSpec::falconn(2, 16), 1024, 64, 0.4),
            (IndexSpec::e2lsh(1, 16), 1024, 0, 0.4),
            (IndexSpec::c2lsh(32, 2), 1024, 0, 0.4),
        ] {
            let spec = spec.with_w(wl.w).with_seed(o.seed);
            let built = build_spec(&spec, &wl.data, Metric::Angular)
                .unwrap_or_else(|e| panic!("building {spec}: {e}"));
            let pt = run_point(&built, &wl.name, &wl.queries, &wl.gt, o.k, budget, probes);
            assert!(
                pt.recall >= floor,
                "{} on {} (angular): recall {:.2} below floor {floor}",
                pt.method,
                wl.name,
                pt.recall
            );
        }
    }
}

#[test]
fn lccs_recall_is_budget_monotone_statistically() {
    let o = opts(3_000);
    let wl = load_workload(
        &SynthSpec::sift_like().with_n(o.n),
        "Image",
        &o,
        Metric::Euclidean,
    );
    let spec = IndexSpec::lccs(64).with_w(wl.w).with_seed(1);
    let built = build_spec(&spec, &wl.data, Metric::Euclidean).expect("build");
    let mut prev = 0.0;
    for budget in [4usize, 32, 256, 2048] {
        let pt = run_point(&built, &wl.name, &wl.queries, &wl.gt, 10, budget, 0);
        assert!(
            pt.recall + 1e-9 >= prev,
            "recall degraded with budget: {prev} -> {} at {budget}",
            pt.recall
        );
        prev = pt.recall;
    }
    assert!(prev > 0.8, "λ=2048 on n=3000 should recall > 80%, got {prev}");
}

#[test]
fn exact_duplicate_queries_always_find_themselves() {
    // Queries drawn from the database: every method must return the object
    // itself as the top-1 (distance 0) given a healthy budget.
    let spec = SynthSpec::deep_like().with_n(1_500);
    let data = std::sync::Arc::new(spec.generate(9));
    let queries = data.sample_queries(10, 4);
    let gt = ExactKnn::compute(&data, &queries, 1, Metric::Euclidean);
    for spec in [
        IndexSpec::lccs(32),
        IndexSpec::e2lsh(4, 16),
        IndexSpec::c2lsh(32, 8),
        IndexSpec::qalsh(32, 8),
        IndexSpec::srs(6),
        IndexSpec::kd_tree(),
    ] {
        let spec = spec.with_w(40.0).with_seed(3);
        let built = build_spec(&spec, &data, Metric::Euclidean)
            .unwrap_or_else(|e| panic!("building {spec}: {e}"));
        let params = SearchParams::new(1, 256);
        for (qi, q) in queries.iter().enumerate() {
            let got = built.query(q, &params);
            assert!(
                !got.is_empty() && got[0].dist < 1e-6,
                "{} failed to find the duplicate of query {qi} (gt id {})",
                built.spec,
                gt.neighbors(qi)[0].id
            );
        }
    }
}

#[test]
fn spec_grammar_drives_the_full_pipeline() {
    // The acceptance path of PR 3: a spec *string* is a complete build
    // recipe — parse it, build through the registry, and answer queries
    // identically to the hand-constructed spec.
    let o = opts(1_200);
    let wl = load_workload(&SynthSpec::sift_like().with_n(o.n), "Image", &o, Metric::Euclidean);
    let text = format!("mp-lccs:m=32,w={},seed={}", wl.w, o.seed);
    let parsed: IndexSpec = text.parse().expect("grammar");
    assert_eq!(parsed, IndexSpec::mp_lccs(32).with_w(wl.w).with_seed(o.seed));
    assert_eq!(parsed.to_string(), text, "canonical display round-trip");
    let built = build_spec(&parsed, &wl.data, Metric::Euclidean).expect("build");
    let pt = run_point(&built, &wl.name, &wl.queries, &wl.gt, o.k, 512, 33);
    assert!(pt.recall >= 0.5, "parsed spec should serve like the constructed one");
}

#[test]
fn metrics_are_consistent_across_facade() {
    // The facade crate re-exports everything; exercise the full pipeline
    // through `lccs_repro::` paths only.
    use lccs_repro::dataset::{Metric as M, SynthSpec as S};
    use lccs_repro::lccs_lsh::{LccsLsh, LccsParams};
    let spec = S::glove_like().with_n(800);
    let data = std::sync::Arc::new(spec.generate(2).normalized());
    let idx = LccsLsh::build(data.clone(), M::Angular, &LccsParams::angular().with_m(16));
    let out = idx.query(data.get(3), 5, 64);
    assert_eq!(out.neighbors[0].id, 3);
}
