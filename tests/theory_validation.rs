//! Integration tests validating the paper's §5 theory against the real
//! implementation (not just the closed-form models).

use csa::naive;
use dataset::{Metric, SynthSpec};
use lccs_lsh::{theory, LccsLsh, LccsParams};
use lsh::prob;
use std::sync::Arc;

/// Lemma 5.1 direction: near pairs have longer LCCS than far pairs, on real
/// hash strings from the real family.
#[test]
fn near_pairs_have_longer_lccs_on_real_hash_strings() {
    let spec = SynthSpec::sift_like().with_n(2_000);
    let data = Arc::new(spec.generate(3));
    let idx = LccsLsh::build(
        data.clone(),
        Metric::Euclidean,
        &LccsParams::euclidean(30.0).with_m(64),
    );
    let strings = idx.csa().strings();

    // Build near/far pairs from the data: near = same query's top-1 vs
    // itself perturbed? Simpler: compare LCCS of each object with its exact
    // NN vs with a random far object.
    let gt = dataset::ExactKnn::compute(&data, &data.truncated(50), 3, Metric::Euclidean);
    let mut near_sum = 0usize;
    let mut far_sum = 0usize;
    let mut cnt = 0usize;
    for qi in 0..50usize {
        let me = qi;
        let nn = gt.neighbors(qi)[1].id as usize; // skip self
        let far = (qi * 37 + 1234) % data.len();
        if far == me || far == nn {
            continue;
        }
        near_sum += naive::lccs_len(strings.row(me), strings.row(nn));
        far_sum += naive::lccs_len(strings.row(me), strings.row(far));
        cnt += 1;
    }
    let near = near_sum as f64 / cnt as f64;
    let far = far_sum as f64 / cnt as f64;
    assert!(
        near > far + 0.5,
        "mean LCCS with true NN ({near:.2}) must exceed mean LCCS with random far object ({far:.2})"
    );
}

/// Theorem 5.1's λ: using the theory-recommended budget achieves materially
/// better-than-chance recall (the theorem promises ≥ 1/4 success for
/// (R,c)-NNS; on clustered data the practical recall is far higher).
#[test]
fn theorem_5_1_lambda_budget_recalls() {
    let n = 4_000;
    let spec = SynthSpec::sift_like().with_n(n);
    let data = Arc::new(spec.generate(1));
    let queries = spec.generate_queries(20, 1);
    let gt = dataset::ExactKnn::compute(&data, &queries, 1, Metric::Euclidean);

    // Collision probabilities at the cluster scale.
    let r = {
        let prof = dataset::stats::DistanceProfile::sample(&data, Metric::Euclidean, 300, 9);
        prof.mean / prof.relative_contrast
    };
    let w = 2.0 * r;
    let p1 = prob::collision_probability_euclidean(r, w);
    let p2 = prob::collision_probability_euclidean(2.0 * r, w);
    let m = 64;
    let lambda = theory::lambda(m, n, p1, p2);
    assert!(lambda >= 1 && lambda <= n);

    let idx = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(w).with_m(m));
    let mut hits = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        let out = idx.query(q, 1, lambda);
        // success = returned something within c × true NN distance
        let limit = 2.0 * gt.dist(qi, 0).max(1e-9);
        hits += usize::from(out.neighbors.first().is_some_and(|nb| nb.dist <= limit));
    }
    let success = hits as f64 / queries.len() as f64;
    assert!(
        success >= 0.25,
        "Theorem 5.1 promises ≥ 1/4 (R,c)-NNS success at λ = {lambda}, measured {success}"
    );
}

/// The empirical LCCS-length distribution of real hash strings matches the
/// extreme-value model of Lemma 5.2 at the median, within a symbol.
#[test]
fn lemma_5_2_median_matches_real_hash_strings() {
    let m = 256;
    let p: f64 = 0.5;
    let lens = theory::sample_lccs_lengths(m, p, 2001, 3);
    let mut sorted = lens;
    sorted.sort_unstable();
    let emp = sorted[sorted.len() / 2] as f64;
    let model = theory::median_lccs_len(m, p);
    assert!((emp - model).abs() < 1.5, "median {emp} vs model {model}");
}

/// Table 1's α = 1 column beats linear scan asymptotically: measure that
/// doubling n grows LCCS query time sub-linearly while scan time grows
/// ~linearly. Statistical — uses generous tolerances.
#[test]
fn query_time_scales_sublinearly() {
    let time_for = |n: usize| {
        let spec = SynthSpec::new("scale", n, 32).with_clusters(32);
        let data = Arc::new(spec.generate(5));
        let queries = spec.generate_queries(30, 5);
        let idx =
            LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(12.0).with_m(32));
        let mut scratch = idx.scratch();
        // warmup
        for q in queries.iter() {
            idx.query_with(q, 10, 32, &mut scratch);
        }
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            for q in queries.iter() {
                idx.query_with(q, 10, 32, &mut scratch);
            }
        }
        t0.elapsed().as_secs_f64()
    };
    let t1 = time_for(2_000);
    let t8 = time_for(16_000);
    assert!(
        t8 < t1 * 6.0,
        "8× data should cost well under 6× query time (sub-linear), got {t1:.4}s -> {t8:.4}s"
    );
}
