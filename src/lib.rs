//! Facade crate: re-exports all member crates of the LCCS-LSH reproduction
//! workspace and hosts the runnable examples and cross-crate integration
//! tests. See README.md for the tour and `docs/architecture.md` for the
//! crate map and data flow.

#![forbid(unsafe_code)]

pub use baselines;
pub use csa;
pub use dataset;
pub use eval;
pub use lccs_lsh;
pub use lsh;
