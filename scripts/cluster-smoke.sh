#!/usr/bin/env bash
# Cluster smoke: two real annd shard daemons behind an annd --router,
# exercised end to end over TCP — routed BUILD, insert, search, then a
# real kill -9 of one shard (degraded typed-partial search), restart,
# and a byte-exact recovery diff. Used verbatim by the CI test job and
# by `just cluster-demo`.
set -euo pipefail

DIR="${1:-/tmp/annd-cluster-smoke}"
BASE_PORT="${2:-38400}"
DIM=16

ROUTER_ADDR="127.0.0.1:$BASE_PORT"
S0_ADDR="127.0.0.1:$((BASE_PORT + 1))"
S1_ADDR="127.0.0.1:$((BASE_PORT + 2))"

# Build once and run the binaries directly: the PIDs must be the
# daemons' own (not a cargo wrapper), so the failure trap really kills
# them and never leaves an orphan holding a port.
cargo build --release -p serve
ANND=target/release/annd
CLI=target/release/ann-cli

rm -rf "$DIR"
mkdir -p "$DIR/s0" "$DIR/s1" "$DIR/router"

"$ANND" --snapshot-dir "$DIR/s0" --addr "$S0_ADDR" > "$DIR/s0.log" 2>&1 &
S0_PID=$!
"$ANND" --snapshot-dir "$DIR/s1" --addr "$S1_ADDR" > "$DIR/s1.log" 2>&1 &
S1_PID=$!
"$ANND" --router "$S0_ADDR,$S1_ADDR" --router-dir "$DIR/router" \
    --addr "$ROUTER_ADDR" --shard-timeout-ms 1500 > "$DIR/router.log" 2>&1 &
ROUTER_PID=$!
trap 'kill "$S0_PID" "$S1_PID" "$ROUTER_PID" 2>/dev/null || true' EXIT
sleep 2

grep -F "router: 2 shard(s)" "$DIR/router.log" \
    || (echo "cluster smoke: router banner missing" && cat "$DIR/router.log" && exit 1)

# Routed BUILD: the router slices the dataset across both shards with
# the strided id layout, so each shard holds one residue class.
"$CLI" gen --out "$DIR/cluster.fvecs" --n 300 --dim "$DIM" --seed 11
"$CLI" build --addr "$ROUTER_ADDR" --index smoke --spec linear \
    --data "$DIR/cluster.fvecs" --live true
"$CLI" list --addr "$ROUTER_ADDR" | grep -F "smoke" | grep -F "n=300" | grep -F "load=router" \
    || (echo "cluster smoke: routed LIST should aggregate 300 rows" && exit 1)
"$CLI" list --addr "$S0_ADDR" | grep -F "n=150" \
    || (echo "cluster smoke: shard 0 should hold half the rows" && exit 1)

# Routed writes: an auto-id insert lands above every built row, and the
# row is immediately searchable through the router (read-your-writes).
NINE_VEC=$(printf '9.0,%.0s' $(seq "$DIM") | sed 's/,$//')
"$CLI" insert --addr "$ROUTER_ADDR" --index smoke --vec "$NINE_VEC" | grep -F "id=300" \
    || (echo "cluster smoke: auto id should continue at 300" && exit 1)
"$CLI" query --addr "$ROUTER_ADDR" --index smoke --k 1 --budget 512 --vec "$NINE_VEC" \
    | grep -F "id=300" || (echo "cluster smoke: routed read-your-writes failed" && exit 1)
"$CLI" delete --addr "$ROUTER_ADDR" --index smoke --ids 300 | grep -F "deleted 1 of 1" \
    || (echo "cluster smoke: routed delete miscounted" && exit 1)

# Routed STATS: the aggregate row plus per-shard breakdowns, with the
# latency-histogram quantiles on every line.
"$CLI" stats --addr "$ROUTER_ADDR" | grep -F "smoke@shard0" \
    || (echo "cluster smoke: per-shard STATS breakdown missing" && exit 1)
"$CLI" stats --addr "$ROUTER_ADDR" | grep -F "smoke	" | grep -E "p50_us=[0-9]+" \
    || (echo "cluster smoke: latency quantiles missing from routed STATS" && exit 1)

ZERO_VEC=$(printf '0.0,%.0s' $(seq "$DIM") | sed 's/,$//')
"$CLI" search --addr "$ROUTER_ADDR" --index smoke --k 5 --budget 512 --vec "$ZERO_VEC" \
    > "$DIR/search-healthy.txt"
grep -E "^0\sid=" "$DIR/search-healthy.txt" \
    || (echo "cluster smoke: healthy search returned nothing" && exit 1)
grep -F "missing=" "$DIR/search-healthy.txt" \
    && (echo "cluster smoke: healthy search flagged missing shards" && exit 1)

# Kill one shard for real. The router must keep answering with a typed
# partial that names exactly the dead shard — no hang, no error.
kill -9 "$S1_PID"
wait "$S1_PID" 2>/dev/null || true
"$CLI" search --addr "$ROUTER_ADDR" --index smoke --k 5 --budget 512 --vec "$ZERO_VEC" \
    > "$DIR/search-degraded.txt"
grep -F "partial	missing=shard1@$S1_ADDR" "$DIR/search-degraded.txt" \
    || (echo "cluster smoke: degraded search did not name the dead shard" \
        && cat "$DIR/search-degraded.txt" && exit 1)
grep -E "^0\sid=" "$DIR/search-degraded.txt" \
    || (echo "cluster smoke: degraded search lost the surviving hits" && exit 1)

# Router telemetry: the scrape surface must show the degraded read we
# just forced, the per-shard failure counter for the dead shard, and
# the router's own hop-latency histogram.
"$CLI" metrics --addr "$ROUTER_ADDR" > "$DIR/router-metrics.txt"
grep -E '^ann_router_degraded_reads_total [1-9]' "$DIR/router-metrics.txt" \
    || (echo "cluster smoke: degraded-read counter did not move" \
        && cat "$DIR/router-metrics.txt" && exit 1)
grep -E '^ann_router_shard_failures_total\{shard="shard1"\} [1-9]' "$DIR/router-metrics.txt" \
    || (echo "cluster smoke: dead shard's failure counter did not move" && exit 1)
grep -E '^ann_router_shard_attempts_total\{shard="shard0"\} [1-9]' "$DIR/router-metrics.txt" \
    || (echo "cluster smoke: per-shard attempt counters missing" && exit 1)
grep -F 'ann_search_latency_micros_count{index="router"}' "$DIR/router-metrics.txt" \
    || (echo "cluster smoke: router hop histogram missing from METRICS" && exit 1)

# Restart the shard over its surviving directory (WAL + snapshot): the
# next routed search is whole again and byte-identical to pre-kill.
"$ANND" --snapshot-dir "$DIR/s1" --addr "$S1_ADDR" > "$DIR/s1-restart.log" 2>&1 &
S1_PID=$!
sleep 2
"$CLI" search --addr "$ROUTER_ADDR" --index smoke --k 5 --budget 512 --vec "$ZERO_VEC" \
    > "$DIR/search-recovered.txt"
diff "$DIR/search-healthy.txt" "$DIR/search-recovered.txt" \
    || (echo "cluster smoke: answers changed across the shard kill + restart" && exit 1)

# Graceful teardown: the router first (it doesn't own the shards), then
# each shard.
"$CLI" shutdown --addr "$ROUTER_ADDR"
wait "$ROUTER_PID"
"$CLI" shutdown --addr "$S0_ADDR"
"$CLI" shutdown --addr "$S1_ADDR"
wait "$S0_PID" "$S1_PID"
trap - EXIT
echo "cluster smoke: OK"
