#!/usr/bin/env bash
# Verifies that every intra-repo markdown link in README.md and docs/*.md
# points at a file that actually exists. External links (http/https/...)
# are skipped — this is a bitrot tripwire for relative paths, not a web
# crawler. Used by CI and `just docs`.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
    dir=$(dirname "$doc")
    # Every markdown link target: the (...) of []() pairs.
    while IFS= read -r target; do
        case "$target" in
            http://* | https://* | mailto:* | \#*) continue ;;
        esac
        path="${target%%#*}" # drop any #fragment
        [ -n "$path" ] || continue
        # Relative to the linking file first, then to the repo root.
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "$doc: broken link -> $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
    echo "check-doc-links: FAILED"
    exit 1
fi
echo "check-doc-links: OK"
