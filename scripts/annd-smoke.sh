#!/usr/bin/env bash
# annd smoke: build demo snapshots, start the daemon, exercise every
# client command over TCP, shut down gracefully. Used verbatim by the CI
# test job and by `just smoke`.
set -euo pipefail

DIR="${1:-/tmp/annd-smoke}"
ADDR="${2:-127.0.0.1:38211}"
DIM=16

# Build once and run the binaries directly: $! must be annd's own PID
# (not a cargo wrapper), so the failure trap really kills the daemon and
# never leaves an orphan holding the port.
cargo build --release -p serve
ANND=target/release/annd
CLI=target/release/ann-cli

rm -rf "$DIR"
"$CLI" demo --out "$DIR" --n 500 --dim "$DIM"
"$ANND" --snapshot-dir "$DIR" --addr "$ADDR" > "$DIR/annd.log" 2>&1 &
ANND_PID=$!
trap 'kill "$ANND_PID" 2>/dev/null || true' EXIT
sleep 2

# The startup banner must say how each snapshot was loaded: on a unix
# host the v3 demo containers are served zero-copy from an mmap
# (load=mapped) with their persisted SQ8 code tables live (sq8=on).
grep -F "load=mapped" "$DIR/annd.log" \
    || (echo "load-mode smoke: daemon did not log a mapped snapshot load" \
        && cat "$DIR/annd.log" && exit 1)
grep -F "sq8=on" "$DIR/annd.log" \
    || (echo "load-mode smoke: daemon did not log an active SQ8 code table" \
        && cat "$DIR/annd.log" && exit 1)

ZERO_VEC=$(printf '0.0,%.0s' $(seq "$DIM") | sed 's/,$//')
"$CLI" ping --addr "$ADDR"
"$CLI" list --addr "$ADDR"
"$CLI" query --addr "$ADDR" --index demo-lccs --k 5 --budget 64 --vec "$ZERO_VEC"
"$CLI" stats --addr "$ADDR"

# BUILD over the wire: gen an fvecs dataset, build from a spec string,
# query the freshly installed index, and check the snapshot + catalog
# both carry the spec.
"$CLI" gen --out "$DIR/live.fvecs" --n 400 --dim "$DIM" --seed 7
"$CLI" build --addr "$ADDR" --index live-mp --spec "mp-lccs:m=8,w=8,seed=7" \
    --data "$DIR/live.fvecs"
"$CLI" query --addr "$ADDR" --index live-mp --k 5 --budget 64 --probes 17 --vec "$ZERO_VEC"
"$CLI" list --addr "$ADDR" | grep -F "live-mp" | grep -F "spec=mp-lccs:m=8,w=8,seed=7" \
    || (echo "BUILD smoke: spec missing from LIST" && exit 1)
"$CLI" describe --snap "$DIR/live-mp.snap" | grep -F "spec:    mp-lccs:m=8,w=8,seed=7" \
    || (echo "BUILD smoke: spec missing from snapshot" && exit 1)

# Back-compat: a PR-2-era container is today's bytes minus the trailing
# META section (marker 4 + len 4 + u16 spec string (2 + 22 here) + w 8 +
# seed 8 + build_secs 8 + rows 8 = 64 bytes for this spec). Stripping it
# must yield a loadable snapshot that describe reports as pre-v2.
SNAP_SIZE=$(wc -c < "$DIR/live-mp.snap")
head -c "$((SNAP_SIZE - 64))" "$DIR/live-mp.snap" > "$DIR/prev2.snap"
"$CLI" describe --snap "$DIR/prev2.snap" | grep -F "spec:    unknown (pre-v2)" \
    || (echo "BUILD smoke: pre-v2 snapshot not described as unknown" && exit 1)
# The synthetic pre-v2 file still carries live-mp's embedded catalog
# name; drop it or the restart below would see a duplicate entry.
rm "$DIR/prev2.snap"

# Recall-planning round-trip: a fresh BUILD carries no calibration
# section (that is what keeps the META-strip arithmetic above valid), a
# target_recall search is a typed error until CALIBRATE runs, and after
# it the planner picks the knobs and reports them in the stats plan line.
"$CLI" describe --snap "$DIR/live-mp.snap" | grep -F "calibration: none" \
    || (echo "plan smoke: BUILD must not attach a calibration section" && exit 1)
("$CLI" search --addr "$ADDR" --index live-mp --k 5 --target-recall 0.9 \
    --vec "$ZERO_VEC" 2>&1 || true) | grep -F "not calibrated" \
    || (echo "plan smoke: uncalibrated target_recall should be a typed error" && exit 1)
"$CLI" calibrate --addr "$ADDR" --index live-mp --sample 32 --k 5 \
    | grep -E "points=[1-9]" \
    || (echo "plan smoke: calibrate reported no grid points" && exit 1)
"$CLI" search --addr "$ADDR" --index live-mp --k 5 --target-recall 0.9 --stats true \
    --vec "$ZERO_VEC" | grep -E "^plan\sbudget=[1-9]" \
    || (echo "plan smoke: planned search reported no plan line" && exit 1)
"$CLI" list --addr "$ADDR" | grep -F "live-mp" | grep -E "cal=fresh" \
    || (echo "plan smoke: LIST should show fresh calibration" && exit 1)
"$CLI" describe --snap "$DIR/live-mp.snap" | grep -E "calibration: [1-9][0-9]* points" \
    || (echo "plan smoke: calibration table not persisted into the snapshot" && exit 1)

# Live indexing round-trip: BUILD --live, insert a recognizable row,
# query it back (read-your-writes), delete + re-check, flush, restart
# the daemon from the flushed .snap, and verify the reloaded index
# answers the same queries identically.
"$CLI" build --addr "$ADDR" --index mut-idx --spec "lccs:m=8,w=8,seed=7" \
    --data "$DIR/live.fvecs" --live true --seal-threshold 64 --max-segments 3
NINE_VEC=$(printf '9.0,%.0s' $(seq "$DIM") | sed 's/,$//')
"$CLI" insert --addr "$ADDR" --index mut-idx --vec "$NINE_VEC" | grep -F "id=400" \
    || (echo "live smoke: auto id should continue at 400" && exit 1)
"$CLI" query --addr "$ADDR" --index mut-idx --k 1 --budget 64 --vec "$NINE_VEC" \
    | grep -F "id=400" || (echo "live smoke: read-your-writes failed" && exit 1)
"$CLI" delete --addr "$ADDR" --index mut-idx --ids 400 | grep -F "deleted 1 of 1" \
    || (echo "live smoke: delete miscounted" && exit 1)
"$CLI" query --addr "$ADDR" --index mut-idx --k 1 --budget 64 --vec "$NINE_VEC" \
    | grep -F "id=400" && (echo "live smoke: deleted row still served" && exit 1)
"$CLI" stats --addr "$ADDR" | grep -F "mut-idx" | grep -F "inserts=1" | grep -F "deletes=1" \
    || (echo "live smoke: write counters missing from STATS" && exit 1)
"$CLI" stats --addr "$ADDR" | grep -F "mut-idx" | grep -E "p50_us=[0-9]+" | grep -E "p99_us=[0-9]+" \
    || (echo "live smoke: latency quantiles missing from STATS" && exit 1)
"$CLI" flush --addr "$ADDR" --index mut-idx
"$CLI" describe --snap "$DIR/mut-idx.snap" | grep -F "live:" \
    || (echo "live smoke: flushed snapshot has no LIVE section" && exit 1)
"$CLI" query --addr "$ADDR" --index mut-idx --k 5 --budget 64 --vec "$ZERO_VEC" \
    > "$DIR/before-restart.txt"

# Filtered + range SEARCH round-trip: restrict the answer to an id
# allowlist, cap it with a distance threshold, and fan a small query file
# through --from — all against the spec-built live-mp index, capturing
# the output for a byte-exact diff across the daemon restart below.
seq 0 2 398 > "$DIR/even-ids.txt"
"$CLI" gen --out "$DIR/probes.fvecs" --n 3 --dim "$DIM" --seed 9
"$CLI" search --addr "$ADDR" --index live-mp --k 5 --budget 64 \
    --filter "$DIR/even-ids.txt" --vec "$ZERO_VEC" | grep -E "^0\sid=" \
    || (echo "search smoke: filtered search returned nothing" && exit 1)
"$CLI" search --addr "$ADDR" --index live-mp --k 5 --budget 64 \
    --filter "$DIR/even-ids.txt" --vec "$ZERO_VEC" | grep -oE "id=[0-9]*[13579]\b" \
    && (echo "search smoke: allowlist leaked an odd id" && exit 1)
"$CLI" search --addr "$ADDR" --index live-mp --k 5 --budget 64 --stats true \
    --vec "$ZERO_VEC" | grep -E "^stats\sscanned=[1-9]" \
    || (echo "search smoke: stats section missing" && exit 1)
"$CLI" search --addr "$ADDR" --index live-mp --k 5 --budget 64 \
    --filter "$DIR/even-ids.txt" --max-dist 1.5 --from "$DIR/probes.fvecs" \
    > "$DIR/search-before-restart.txt"
"$CLI" stats --addr "$ADDR" | grep -F "live-mp" | grep -E "scanned=[1-9]" \
    || (echo "search smoke: scanned counter missing from STATS" && exit 1)

# Restart: stop the daemon, bring a fresh one up over the same dir.
"$CLI" shutdown --addr "$ADDR"
wait "$ANND_PID"
"$ANND" --snapshot-dir "$DIR" --addr "$ADDR" &
ANND_PID=$!
sleep 2
"$CLI" query --addr "$ADDR" --index mut-idx --k 5 --budget 64 --vec "$ZERO_VEC" \
    > "$DIR/after-restart.txt"
diff "$DIR/before-restart.txt" "$DIR/after-restart.txt" \
    || (echo "live smoke: answers changed across the restart" && exit 1)
"$CLI" search --addr "$ADDR" --index live-mp --k 5 --budget 64 \
    --filter "$DIR/even-ids.txt" --max-dist 1.5 --from "$DIR/probes.fvecs" \
    > "$DIR/search-after-restart.txt"
diff "$DIR/search-before-restart.txt" "$DIR/search-after-restart.txt" \
    || (echo "search smoke: filtered/range answers changed across the restart" && exit 1)
"$CLI" list --addr "$ADDR" | grep -F "live-mp" | grep -E "cal=fresh" \
    || (echo "plan smoke: calibration lost across the restart" && exit 1)
"$CLI" search --addr "$ADDR" --index live-mp --k 5 --target-recall 0.9 --stats true \
    --vec "$ZERO_VEC" | grep -E "^plan\sbudget=[1-9]" \
    || (echo "plan smoke: restarted daemon cannot plan from the reloaded table" && exit 1)

# Durable write path: an acknowledged INSERT with *no* FLUSH must
# survive kill -9 — the daemon appends every acked write to
# <name>.wal (fsynced per --wal-sync) before answering, and a restart
# replays the log over the last flushed snapshot. docs/durability.md is
# the full contract; this is the real-SIGKILL half of its test matrix
# (the e2e suite covers the in-process half).
"$CLI" shutdown --addr "$ADDR"
wait "$ANND_PID"
"$ANND" --snapshot-dir "$DIR" --addr "$ADDR" --wal-sync always \
    --log-level debug > "$DIR/annd-wal.log" 2>&1 &
ANND_PID=$!
sleep 2
grep -F "wal-sync=always" "$DIR/annd-wal.log" \
    || (echo "wal smoke: daemon did not log its wal-sync mode" && exit 1)
"$CLI" insert --addr "$ADDR" --index mut-idx --vec "$NINE_VEC" | grep -F "id=401" \
    || (echo "wal smoke: auto id should continue at 401" && exit 1)
test -s "$DIR/mut-idx.wal" \
    || (echo "wal smoke: no WAL next to the snapshot after an acked insert" && exit 1)
"$CLI" stats --addr "$ADDR" | grep -F "mut-idx" | grep -E "wal_records=[1-9]" \
    || (echo "wal smoke: wal counters missing from STATS" && exit 1)

# Observability surface: at --log-level debug every request leaves a
# structured logfmt line with a trace id, and METRICS serves Prometheus
# text whose series cover the search hot path and the WAL fsync
# latency histogram the acked insert above just populated.
grep -E 'level=debug msg=request conn=[0-9]+ trace=[0-9a-f]{16}/[0-9a-f]{16}' "$DIR/annd-wal.log" \
    || (echo "obs smoke: no structured request log line" && cat "$DIR/annd-wal.log" && exit 1)
"$CLI" metrics --addr "$ADDR" > "$DIR/metrics.txt"
grep -F "# TYPE ann_search_latency_micros histogram" "$DIR/metrics.txt" \
    || (echo "obs smoke: search latency histogram missing from METRICS" && exit 1)
grep -E '^ann_wal_fsync_micros_count\{index="mut-idx"\} [1-9]' "$DIR/metrics.txt" \
    || (echo "obs smoke: WAL fsync histogram did not count the acked insert" \
        && cat "$DIR/metrics.txt" && exit 1)
grep -E '^ann_inserts_total\{index="mut-idx"\} [1-9]' "$DIR/metrics.txt" \
    || (echo "obs smoke: per-index insert counter did not move" && exit 1)
grep -E '^ann_connections_total [1-9]' "$DIR/metrics.txt" \
    || (echo "obs smoke: connection counter missing from METRICS" && exit 1)
"$CLI" query --addr "$ADDR" --index mut-idx --k 3 --budget 64 --vec "$NINE_VEC" \
    > "$DIR/wal-before-kill.txt"
grep -F "id=401" "$DIR/wal-before-kill.txt" \
    || (echo "wal smoke: acked row not served before the kill" && exit 1)

kill -9 "$ANND_PID" # no FLUSH, no graceful anything
wait "$ANND_PID" 2>/dev/null || true

"$ANND" --snapshot-dir "$DIR" --addr "$ADDR" &
ANND_PID=$!
sleep 2
"$CLI" query --addr "$ADDR" --index mut-idx --k 3 --budget 64 --vec "$NINE_VEC" \
    > "$DIR/wal-after-kill.txt"
diff "$DIR/wal-before-kill.txt" "$DIR/wal-after-kill.txt" \
    || (echo "wal smoke: acked insert lost or changed across kill -9" && exit 1)

"$CLI" shutdown --addr "$ADDR"

wait "$ANND_PID"
trap - EXIT
echo "annd smoke: OK"
