#!/usr/bin/env bash
# annd smoke: build demo snapshots, start the daemon, exercise every
# client command over TCP, shut down gracefully. Used verbatim by the CI
# test job and by `just smoke`.
set -euo pipefail

DIR="${1:-/tmp/annd-smoke}"
ADDR="${2:-127.0.0.1:38211}"
DIM=16

# Build once and run the binaries directly: $! must be annd's own PID
# (not a cargo wrapper), so the failure trap really kills the daemon and
# never leaves an orphan holding the port.
cargo build --release -p serve
ANND=target/release/annd
CLI=target/release/ann-cli

rm -rf "$DIR"
"$CLI" demo --out "$DIR" --n 500 --dim "$DIM"
"$ANND" --snapshot-dir "$DIR" --addr "$ADDR" &
ANND_PID=$!
trap 'kill "$ANND_PID" 2>/dev/null || true' EXIT
sleep 2

ZERO_VEC=$(printf '0.0,%.0s' $(seq "$DIM") | sed 's/,$//')
"$CLI" ping --addr "$ADDR"
"$CLI" list --addr "$ADDR"
"$CLI" query --addr "$ADDR" --index demo-lccs --k 5 --budget 64 --vec "$ZERO_VEC"
"$CLI" stats --addr "$ADDR"
"$CLI" shutdown --addr "$ADDR"

wait "$ANND_PID"
trap - EXIT
echo "annd smoke: OK"
