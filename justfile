# Task runner for the LCCS-LSH reproduction workspace.
# Install `just` (https://github.com/casey/just) or copy the commands.

# Build everything in release mode.
build:
    cargo build --release --workspace

# Tier-1 gate: release build + full test suite.
test:
    cargo test -q --release --workspace

# Lint like CI does.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Criterion micro-benches (csa, families, queries, batch).
bench:
    cargo bench -p bench

# One-iteration smoke pass over the benches.
bench-smoke:
    CRITERION_QUICK=1 cargo bench -p bench

# The tracked serving-performance trajectory: regenerates BENCH_serve.json
# at the repo root (cold-start mapped vs owned, live memtable sweep and
# ExactKnn batch with SQ8 on vs off, router hop, traced vs plain wire
# sweep), asserting bit-identical top-k, the 1.5x SQ8 speedup floor, and
# the ≤5% instrumentation-overhead gate. Commit the refreshed file with
# perf PRs.
bench-report:
    cargo run --release -p bench --bin bench_report -- --min-speedup 1.5

# The paper's figure/table experiments at a reduced scale.
figures out="results":
    cargo run -p bench --release --bin table2 -- --out {{out}}
    cargo run -p bench --release --bin fig4 -- --n 5000 --queries 20 --out {{out}}

# Build demo snapshots and serve them with annd (foreground; stop with
# `ann-cli shutdown --addr {{addr}}` from another shell).
serve dir="/tmp/annd-snapshots" addr="127.0.0.1:7700":
    cargo run --release -p serve --bin ann-cli -- demo --out {{dir}}
    cargo run --release -p serve --bin annd -- --snapshot-dir {{dir}} --addr {{addr}}

# The CI smoke: demo snapshots -> annd in the background -> ping/list/
# query/stats over TCP -> graceful shutdown.
smoke dir="/tmp/annd-smoke" addr="127.0.0.1:38211":
    bash scripts/annd-smoke.sh {{dir}} {{addr}}

# Sharded-cluster demo: two annd shards behind an annd --router — routed
# BUILD with the strided id layout, scatter-gather search, a real kill -9
# of one shard (typed partial results), restart, byte-exact recovery.
cluster-demo dir="/tmp/annd-cluster-smoke" base_port="38400":
    bash scripts/cluster-smoke.sh {{dir}} {{base_port}}

# Live-indexing demo: the LSM-style mutable index end to end — insert/
# delete/seal/compact in process, then INSERT/DELETE/FLUSH over TCP with
# a daemon restart from the flushed snapshot.
live-demo:
    cargo run --release --example live_indexing

# Filtered + range search demo: the unified SearchRequest/SearchResponse
# API end to end — allowlist/denylist predicates and max-dist range
# search, every exact answer verified against the brute-force oracle.
search-demo:
    cargo run --release --example filtered_search

# Recall-planning demo: calibrate over the wire, plan a ladder of
# recall targets (watch the chosen knobs grow), compare the planned
# 0.9-target search against the saturated manual corner, and step the
# overload dial (see docs/planning.md).
plan-demo:
    cargo run --release --example recall_planning

# Observability demo: structured debug logs, client-minted traces on the
# wire, slow-query span trees, and a Prometheus METRICS scrape — against
# a real in-process server (see docs/observability.md).
obs-demo:
    cargo run --release --example tracing_demo

# Spec-grammar smoke: print the scheme table and assert every registry
# entry appears in ann::spec::help() (the same invariant CI pins via the
# eval unit test).
spec-help:
    cargo run --release -p serve --bin ann-cli -- spec-help
    cargo test -q --release -p eval registry::tests::every_registry_entry_appears_in_spec_help

# Rustdoc the workspace warning-clean and verify that every intra-repo
# link in README.md and docs/*.md resolves (the CI docs step).
docs:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
    bash scripts/check-doc-links.sh

# The offline-guard CI job: build with no network, assert no registry deps.
offline-guard:
    cargo build --release --offline --workspace
    @! grep -qE '^source = ' Cargo.lock || (echo 'non-vendored dependency in Cargo.lock' && exit 1)

# Everything the CI workflow runs.
verify: build test clippy docs spec-help offline-guard
