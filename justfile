# Task runner for the LCCS-LSH reproduction workspace.
# Install `just` (https://github.com/casey/just) or copy the commands.

# Build everything in release mode.
build:
    cargo build --release --workspace

# Tier-1 gate: release build + full test suite.
test:
    cargo test -q --release --workspace

# Lint like CI does.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Criterion micro-benches (csa, families, queries, batch).
bench:
    cargo bench -p bench

# One-iteration smoke pass over the benches.
bench-smoke:
    CRITERION_QUICK=1 cargo bench -p bench

# The paper's figure/table experiments at a reduced scale.
figures out="results":
    cargo run -p bench --release --bin table2 -- --out {{out}}
    cargo run -p bench --release --bin fig4 -- --n 5000 --queries 20 --out {{out}}

# Everything the CI workflow runs.
verify: build test clippy
