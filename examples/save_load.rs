//! Index persistence: build once, save, reload instantly.
//!
//! The serialized payload stores the build parameters plus the CSA; the
//! hash functions are re-sampled deterministically from the recorded seed on
//! load, so reloading skips both the O(n·m·η(d)) hashing pass and the
//! O(m·n·log n) CSA construction.
//!
//! ```sh
//! cargo run --release --example save_load
//! ```

use dataset::{Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let spec = SynthSpec::deep_like().with_n(20_000);
    let data = Arc::new(spec.generate(13));

    let t0 = Instant::now();
    let index = LccsLsh::build(
        data.clone(),
        Metric::Euclidean,
        &LccsParams::euclidean(45.0).with_m(96),
    );
    let build_time = t0.elapsed();

    let t0 = Instant::now();
    let payload = index.save();
    let save_time = t0.elapsed();

    let path = std::env::temp_dir().join("lccs-deep.idx");
    std::fs::write(&path, &payload).expect("write index");
    println!(
        "built in {build_time:.2?}, saved {:.1} MB in {save_time:.2?} -> {}",
        payload.len() as f64 / 1e6,
        path.display()
    );

    let t0 = Instant::now();
    let raw = std::fs::read(&path).expect("read index");
    let reloaded = LccsLsh::load(&raw[..], data.clone()).expect("load index");
    println!("reloaded in {:.2?} (vs {:.2?} to rebuild)", t0.elapsed(), build_time);

    // Identical answers, bit for bit.
    let q = data.get(4242);
    let a = index.query(q, 5, 128);
    let b = reloaded.query(q, 5, 128);
    assert_eq!(
        a.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
        b.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
    );
    println!("reloaded index answers identically: top-5 = {:?}",
        b.neighbors.iter().map(|n| n.id).collect::<Vec<_>>());
    std::fs::remove_file(&path).ok();
}
