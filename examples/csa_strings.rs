//! Using the Circular Shift Array directly as a string index — no LSH
//! involved. The paper notes that "CSA is potentially of separate interest
//! for other fields of computer science": here it answers k-LCCS queries
//! over circular genome-like sequences (e.g. bacterial plasmids, where
//! sequences have no canonical starting point).
//!
//! ```sh
//! cargo run --release --example csa_strings
//! ```

use csa::{naive, Csa, StringSet};

/// Encodes a DNA string over {A, C, G, T} into symbols.
fn encode(s: &str) -> Vec<u64> {
    s.bytes()
        .map(|b| match b {
            b'A' => 0,
            b'C' => 1,
            b'G' => 2,
            b'T' => 3,
            _ => panic!("not a DNA base: {}", b as char),
        })
        .collect()
}

fn main() {
    // A small library of circular sequences (all the same length — e.g.
    // fixed-window plasmid fingerprints).
    let library = [
        "ACGTACGTACGTGGCA",
        "TTGACGTACGAACGTA", // shares a long circular run with the query
        "GGGGCCCCAAAATTTT",
        "ACGTTGCAACGTTGCA",
        "CATGCATGCATGCATG",
        "TACGTACGTACGTGGC", // rotation-mate of the first entry
    ];
    let rows: Vec<Vec<u64>> = library.iter().map(|s| encode(s)).collect();
    let set = StringSet::from_rows(&rows);
    let csa = Csa::build(set.clone());

    let query = "ACGTACGTACGTGGCT"; // one base off library[0]
    let q = encode(query);

    println!("query: {query}\n");
    println!("top-3 by longest circular co-substring:");
    for c in csa.search(&q, 3) {
        println!(
            "  #{} {:<18} |LCCS| = {:>2}  (naive check: {})",
            c.id,
            library[c.id as usize],
            c.len,
            naive::lccs_len(set.row(c.id as usize), &q)
        );
    }

    // The same machinery works for any total-ordered symbols — the LCCS-LSH
    // scheme just feeds it hash values instead of bases.
    println!("\nindex size: {} bytes for {} strings of length {}",
        csa.nbytes(), set.len(), set.m());
}
