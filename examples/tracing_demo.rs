//! Observability end to end: structured logs, request traces, slow-query
//! span trees, and a Prometheus scrape — against a real in-process server.
//!
//! The demo builds a small snapshot catalog, serves it over TCP, then:
//!
//! 1. turns the log level up to `debug` so every request leaves a
//!    correlatable logfmt line on stderr,
//! 2. mints a [`obs::TraceContext`] client-side and sends it with each
//!    query (the optional trailing TRACE section on the request frame),
//!    so the server's log lines carry *our* trace id,
//! 3. sets the slow-query threshold to 100µs — low enough that these
//!    demo queries cross it and emit the span-tree breakdown a
//!    production operator would see on a genuinely slow request,
//! 4. scrapes the METRICS opcode and prints the Prometheus text.
//!
//! Run with: `cargo run --release --example tracing_demo` (stderr carries
//! the log lines, stdout the narration — pipe them apart to see the split).
//!
//! See `docs/observability.md` for the span model and metric catalogue.

use dataset::{Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams};
use serve::catalog::Catalog;
use serve::client::Client;
use serve::server::Server;
use serve::snapshot::write_index_snapshot;
use std::sync::Arc;

fn main() {
    // Log configuration is global, set once at process start — exactly
    // what `annd --log-level debug --slow-query-ms N` does (the daemon
    // flag has millisecond granularity; in-process callers get micros).
    obs::set_level(obs::Level::Debug);
    obs::set_slow_query_micros(100);

    let dir = std::env::temp_dir().join(format!("tracing-demo-{}", std::process::id()));
    let spec = SynthSpec::sift_like().with_n(5_000);
    let data = Arc::new(spec.generate(7));
    let index = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0));
    let meta = serve::snapshot::SnapMeta::of_build(
        &"lccs:m=16,w=8".parse().expect("spec"),
        0.0,
        data.len() as u64,
    );
    write_index_snapshot(&dir, "demo", &index, &data, Some(meta)).expect("snapshot");
    drop(index);

    let catalog = Catalog::load_dir(&dir).expect("load snapshots");
    let server = Server::bind(catalog, "127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    println!("serving 'demo' on {addr}; watch stderr for the structured log lines");

    // ---- Traced queries: one trace, one span per request. A request
    // that arrives without a TRACE section still gets a context minted
    // at the server edge; sending our own is what lets a client-side
    // error report and the server's slow-query warning correlate.
    let queries = spec.generate_queries(4, 7);
    let mut client = Client::connect(addr).expect("connect");
    let trace = obs::TraceContext::mint();
    println!("\nissuing {} queries under trace {trace}", queries.len());
    for (i, q) in queries.iter().enumerate() {
        client.trace = Some(trace.child());
        let hits = client.query("demo", 3, 256, 0, q).expect("query");
        println!("  query {i}: top-3 = {:?}", hits.iter().map(|n| n.id).collect::<Vec<_>>());
    }
    client.trace = None;

    // ---- Span trees are plain values too — a client can build its own
    // breakdown of a multi-step operation and log it through the same
    // renderer the server uses for slow queries.
    let mut root = obs::SpanRecord::new("demo-session", 0, 4_200).field("queries", queries.len());
    root.push_child(obs::SpanRecord::new("connect", 0, 180));
    root.push_child(obs::SpanRecord::new("queries", 200, 4_000).field("trace", trace));
    println!("\na client-side span tree renders like the server's slow-query log:");
    println!("{}", root.render());

    // ---- The scrape surface: Prometheus text over the METRICS opcode,
    // the same bytes `ann-cli metrics --addr …` prints.
    let text = client.metrics().expect("metrics");
    println!("\nMETRICS scrape ({} bytes):", text.len());
    for line in text.lines().filter(|l| {
        l.starts_with("# TYPE") || l.starts_with("ann_queries_total") || l.contains("_count")
    }) {
        println!("  {line}");
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();
}
