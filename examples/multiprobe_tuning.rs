//! Tuning #probes for MP-LCCS-LSH — a miniature of the paper's Figure 10.
//! Shows the trade the paper reports: probing helps at high recall where
//! single-probe LCCS-LSH must burn candidates, and is overhead at low
//! recall where verification is cheaper than probing.
//!
//! ```sh
//! cargo run --release --example multiprobe_tuning
//! ```

use dataset::{ExactKnn, Metric, SynthSpec};
use lccs_lsh::{LccsParams, MpLccsLsh, MpParams};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let spec = SynthSpec::deep_like().with_n(20_000);
    let data = Arc::new(spec.generate(3));
    let queries = spec.generate_queries(50, 3);
    let k = 10;
    let gt = ExactKnn::compute(&data, &queries, k, Metric::Euclidean);

    let m = 64;
    let index = MpLccsLsh::build(
        data.clone(),
        Metric::Euclidean,
        &LccsParams::euclidean(45.0).with_m(m),
        MpParams { probes: 8 * m + 1, max_alts: 8 },
    );
    let mut scratch = index.scratch();

    println!("m = {m}, sweeping #probes x candidate budget (recall% / ms):\n");
    print!("{:>12}", "#probes\\λ");
    let lambdas = [8usize, 32, 128, 512];
    for l in lambdas {
        print!("{l:>16}");
    }
    println!();
    for mult in [0usize, 1, 2, 4, 8] {
        let probes = mult * m + 1;
        print!("{probes:>12}");
        for lambda in lambdas {
            let t0 = Instant::now();
            let mut hits = 0usize;
            for (qi, q) in queries.iter().enumerate() {
                let out = index.query_probes(q, k, lambda, probes, &mut scratch);
                let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
                hits += out.neighbors.iter().filter(|n| truth.contains(&n.id)).count();
            }
            let ms = t0.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;
            let recall = hits as f64 / (k * queries.len()) as f64 * 100.0;
            print!("{:>9.1}%/{:>5.2}", recall, ms);
        }
        println!();
    }
}
