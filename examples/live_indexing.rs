//! Live indexing end to end: an LSM-style mutable index absorbing
//! writes while serving reads, in-process and then over the wire.
//!
//! Part 1 drives `ann_live::LiveIndex` directly: insert → query →
//! delete → seal → compact, watching the segment layout evolve and ids
//! stay stable. Part 2 serves the same design through `annd`'s protocol
//! — BUILD --live, INSERT/DELETE/FLUSH over TCP, then a simulated
//! daemon restart from the flushed `.snap` that answers identically.
//!
//! Run with: `cargo run --release --example live_indexing`

use ann::{AnnIndex, IndexSpec, MutableAnn, SearchParams};
use ann_live::{LiveConfig, LiveIndex};
use dataset::{Metric, SynthSpec};
use serve::catalog::Catalog;
use serve::client::Client;
use serve::server::Server;

fn main() {
    // ---- Part 1: the index itself.
    let dim = 24;
    let base = SynthSpec::new("base", 3_000, dim).with_clusters(12).generate(7);
    let spec = IndexSpec::lccs(16).with_w(8.0).with_seed(7);
    let config = LiveConfig { seal_threshold: 512, max_segments: 3 };
    let mut live =
        LiveIndex::build_from(spec, Metric::Euclidean, &base, config).expect("build");
    println!("built live index: {} live rows, layout {:?}", live.live_len(), live.segment_layout());

    // Writes land in the memtable and are immediately queryable.
    let fresh = SynthSpec::new("fresh", 1_200, dim).with_clusters(6).generate(8);
    let ids = live.insert(&fresh, None).expect("insert");
    println!(
        "inserted {} rows (ids {}..={}), memtable now {} rows, layout {:?}",
        ids.len(),
        ids.first().unwrap(),
        ids.last().unwrap(),
        live.memtable_rows(),
        live.segment_layout()
    );
    let params = SearchParams::new(5, 96);
    let hit = live.query(fresh.get(0), &params)[0];
    assert_eq!((hit.id, hit.dist), (ids[0], 0.0), "read-your-writes");

    // Deletes tombstone sealed rows; compaction drops them physically.
    let removed = live.delete(&[0, 1, 2, ids[0]]);
    println!("deleted {removed} rows; live_len = {}", live.live_len());
    live.seal().expect("seal");
    println!("after seal+compact: layout {:?}", live.segment_layout());
    assert!(live.query(fresh.get(0), &params).iter().all(|n| n.id != ids[0]));

    // ---- Part 2: the same flow over the annd wire protocol.
    let dir = std::env::temp_dir().join(format!("live-indexing-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let fvecs = dir.join("base.fvecs");
    dataset::io::write_fvecs(&fvecs, &base).unwrap();

    let server = Server::bind(Catalog::empty(), "127.0.0.1:0", 2)
        .expect("bind")
        .with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let mut client = Client::connect(addr).unwrap();

    client
        .build_live("demo", "lccs:m=16,w=8,seed=7", "euclidean", fvecs.to_str().unwrap(), 0, 512, 3)
        .expect("BUILD --live");
    let ids = client.insert("demo", &fresh, None).expect("INSERT");
    client.delete("demo", &ids[..10]).expect("DELETE");
    let (snap, segments, live_rows) = client.flush("demo").expect("FLUSH");
    println!("flushed over the wire: {segments} segment(s), {live_rows} live rows -> {snap}");

    let queries = base.sample_queries(16, 3);
    let before = client.query_batch("demo", 10, 96, 0, &queries).expect("query");

    // Simulated restart: a second daemon over the same snapshot dir.
    client.shutdown().unwrap();
    handle.join().unwrap();
    let server = Server::bind(Catalog::load_dir(&dir).expect("reload"), "127.0.0.1:0", 2)
        .expect("rebind")
        .with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let mut client = Client::connect(addr).unwrap();
    let after = client.query_batch("demo", 10, 96, 0, &queries).expect("query after restart");
    let same = before
        .iter()
        .zip(&after)
        .all(|(a, b)| {
            a.iter().zip(b).all(|(x, y)| x.id == y.id && x.dist.to_bits() == y.dist.to_bits())
        });
    println!("restart answers identical: {same}");
    assert!(same, "flushed live index must answer identically after a restart");

    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
