//! Quickstart: build an LCCS-LSH index over a synthetic dataset and answer
//! a few top-10 queries under Euclidean distance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dataset::{ExactKnn, Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 1. A 20k × 128 clustered dataset (a stand-in for Sift) and 20
    //    held-out queries drawn from the same distribution.
    let spec = SynthSpec::sift_like().with_n(20_000);
    let data = Arc::new(spec.generate(42));
    let queries = spec.generate_queries(20, 42);
    println!("dataset: {} vectors × {} dims", data.len(), data.dim());

    // 2. Build the index: m = 128 hash functions from the random-projection
    //    family, one Circular Shift Array over the hash strings.
    let t0 = Instant::now();
    let params = LccsParams::euclidean(30.0).with_m(128);
    let index = LccsLsh::build(data.clone(), Metric::Euclidean, &params);
    println!(
        "indexed in {:.2?} ({:.1} MB)",
        t0.elapsed(),
        index.index_bytes() as f64 / 1e6
    );

    // 3. Query: λ = 256 candidates per query, top-10 neighbors.
    let k = 10;
    let lambda = 256;
    let gt = ExactKnn::compute(&data, &queries, k, Metric::Euclidean);
    let mut scratch = index.scratch();
    let mut recall_hits = 0usize;
    let t0 = Instant::now();
    for (qi, q) in queries.iter().enumerate() {
        let out = index.query_with(q, k, lambda, &mut scratch);
        let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
        recall_hits += out.neighbors.iter().filter(|n| truth.contains(&n.id)).count();
        if qi == 0 {
            println!("\nquery 0 results (id, distance):");
            for n in &out.neighbors {
                println!("  {:>6}  {:.4}", n.id, n.dist);
            }
        }
    }
    let per_query = t0.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;
    println!(
        "\nrecall@{k} = {:.1}%  |  {:.3} ms/query (single thread)",
        recall_hits as f64 / (k * queries.len()) as f64 * 100.0,
        per_query
    );
}
