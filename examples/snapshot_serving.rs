//! Build-once/serve-many: the snapshot-backed serving flow end to end,
//! in one process.
//!
//! The expensive indexing phase runs once and writes immutable `.snap`
//! containers; a serving instance (`annd` in production, an in-process
//! `serve::server::Server` here) restores them instantly — no hashing
//! pass, no CSA rebuild — and answers single and batch queries over the
//! binary TCP protocol. A second serving instance over the same
//! directory shows the "serve-many" half.
//!
//! Run with: `cargo run --release --example snapshot_serving`

use dataset::{Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams, MpLccsLsh, MpParams};
use serve::catalog::Catalog;
use serve::client::Client;
use serve::server::Server;
use serve::snapshot::write_index_snapshot;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join(format!("snapshot-serving-{}", std::process::id()));

    // ---- Build once (the expensive part, amortized across every server).
    let spec = SynthSpec::sift_like().with_n(10_000);
    let data = Arc::new(spec.generate(7));
    let params = LccsParams::euclidean(8.0).with_m(32);
    let t0 = Instant::now();
    let single = LccsLsh::build(data.clone(), Metric::Euclidean, &params);
    let mp = MpLccsLsh::build(
        data.clone(),
        Metric::Euclidean,
        &params,
        MpParams { probes: 65, max_alts: 8 },
    );
    println!("built 2 indexes over n={} d={} in {:?}", data.len(), data.dim(), t0.elapsed());

    let t0 = Instant::now();
    let meta = |text: &str| {
        serve::snapshot::SnapMeta::of_build(&text.parse().expect("spec"), 0.0, data.len() as u64)
    };
    write_index_snapshot(&dir, "sift-lccs", &single, &data, Some(meta("lccs:m=32,w=8")))
        .expect("snapshot single");
    write_index_snapshot(&dir, "sift-mp", &mp, &data, Some(meta("mp-lccs:m=32,w=8")))
        .expect("snapshot mp");
    println!("snapshotted both to {} in {:?}", dir.display(), t0.elapsed());
    drop((single, mp)); // the builder is done; servers never rebuild

    // ---- Serve many: two independent instances restore the same files.
    let queries = spec.generate_queries(64, 7);
    for instance in 1..=2 {
        let t0 = Instant::now();
        let catalog = Catalog::load_dir(&dir).expect("load snapshots");
        let server = Server::bind(catalog, "127.0.0.1:0", 2).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        println!("\ninstance {instance}: restored catalog + bound {addr} in {:?}", t0.elapsed());

        let mut client = Client::connect(addr).expect("connect");
        for info in client.list().expect("list") {
            println!(
                "  serves {} [{}] spec={} n={} dim={}",
                info.name, info.method, info.spec, info.len, info.dim
            );
        }

        let hits = client.query("sift-lccs", 5, 128, 0, queries.get(0)).expect("query");
        println!("  top-5 for query 0: {:?}", hits.iter().map(|n| n.id).collect::<Vec<_>>());

        let t0 = Instant::now();
        let lists = client.query_batch("sift-mp", 10, 128, 0, &queries).expect("batch");
        println!("  batch of {} against sift-mp in {:?}", lists.len(), t0.elapsed());

        for s in client.stats().expect("stats") {
            println!(
                "  stats {}: queries={} batches={} total={}us max={}us",
                s.name, s.queries, s.batch_requests, s.total_micros, s.max_micros
            );
        }
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");
        println!("  instance {instance} drained cleanly");
    }

    std::fs::remove_dir_all(&dir).ok();
}
