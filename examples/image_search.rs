//! Image-retrieval scenario: Sift-like descriptors under Euclidean
//! distance, comparing LCCS-LSH against E2LSH and a linear scan — the
//! workload the paper's introduction motivates (multimedia databases).
//!
//! ```sh
//! cargo run --release --example image_search
//! ```

use baselines::{E2Lsh, E2lshParams, LinearScan};
use dataset::{ExactKnn, Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let spec = SynthSpec::sift_like().with_n(20_000);
    let data = Arc::new(spec.generate(7));
    let queries = spec.generate_queries(50, 7);
    let k = 10;
    let gt = ExactKnn::compute(&data, &queries, k, Metric::Euclidean);
    let w = 30.0;

    let recall_of = |results: &[Vec<dataset::exact::Neighbor>]| {
        let mut hits = 0usize;
        for (qi, got) in results.iter().enumerate() {
            let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
            hits += got.iter().filter(|n| truth.contains(&n.id)).count();
        }
        hits as f64 / (k * results.len()) as f64 * 100.0
    };

    // LCCS-LSH
    let t0 = Instant::now();
    let lccs = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(w).with_m(128));
    let build_lccs = t0.elapsed();
    let mut scratch = lccs.scratch();
    let t0 = Instant::now();
    let lccs_res: Vec<_> =
        queries.iter().map(|q| lccs.query_with(q, k, 128, &mut scratch).neighbors).collect();
    let time_lccs = t0.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;

    // E2LSH
    let t0 = Instant::now();
    let e2 = E2Lsh::build(data.clone(), Metric::Euclidean, &E2lshParams::euclidean(6, 64, w));
    let build_e2 = t0.elapsed();
    let t0 = Instant::now();
    let e2_res: Vec<_> = queries.iter().map(|q| e2.query(q, k, 2048)).collect();
    let time_e2 = t0.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;

    // Linear scan
    let scan = LinearScan::build(data.clone(), Metric::Euclidean);
    let t0 = Instant::now();
    let scan_res: Vec<_> = queries.iter().map(|q| scan.query(q, k)).collect();
    let time_scan = t0.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;

    println!("method     recall@10   ms/query   index MB   build");
    println!(
        "LCCS-LSH   {:>6.1}%   {:>8.3}   {:>8.1}   {:.2?}",
        recall_of(&lccs_res),
        time_lccs,
        lccs.index_bytes() as f64 / 1e6,
        build_lccs
    );
    println!(
        "E2LSH      {:>6.1}%   {:>8.3}   {:>8.1}   {:.2?}",
        recall_of(&e2_res),
        time_e2,
        e2.index_bytes() as f64 / 1e6,
        build_e2
    );
    println!(
        "Linear     {:>6.1}%   {:>8.3}   {:>8.1}   -",
        recall_of(&scan_res),
        time_scan,
        0.0
    );
}
