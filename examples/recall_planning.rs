//! Recall-targeted planning end to end: calibrate once, then ask for
//! `recall ≥ t` instead of hand-tuning `(budget, probes)`.
//!
//! The demo builds an LCCS snapshot, serves it over TCP, then:
//!
//! 1. shows the typed error an *uncalibrated* `target_recall` request
//!    gets (the same text `SearchRequest::validate` produces in-process),
//! 2. runs the server-side calibration sweep (`ann-cli calibrate` over
//!    the wire): sampled rows of the index itself become queries, the
//!    `(budget, probes)` grid is measured for recall and latency, and
//!    the monotone-regularized table is persisted into the snapshot,
//! 3. plans a ladder of targets — watch the chosen knobs (and the
//!    candidates actually scanned) grow with the requested recall,
//! 4. compares the planned 0.9-target search against the saturated
//!    manual corner: same neighbors, a fraction of the scanning,
//! 5. shows the overload dial ([`plan::Degrader`], `annd --recall-floor`)
//!    stepping a target down toward the floor as p99 runs past its bound.
//!
//! Run with: `cargo run --release --example recall_planning`
//! (or `just plan-demo`). See `docs/planning.md` for the model.

use ann::SearchRequest;
use dataset::{Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams};
use serve::catalog::Catalog;
use serve::client::{Client, ClientError};
use serve::server::Server;
use serve::snapshot::write_index_snapshot;
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join(format!("recall-planning-{}", std::process::id()));
    let spec = SynthSpec::new("plan-demo", 4_000, 24).with_clusters(24);
    let data = Arc::new(spec.generate(11));
    let index = LccsLsh::build(data.clone(), Metric::Euclidean, &LccsParams::euclidean(8.0));
    let meta = serve::snapshot::SnapMeta::of_build(
        &"lccs:m=16,w=8".parse().expect("spec"),
        0.0,
        data.len() as u64,
    );
    write_index_snapshot(&dir, "demo", &index, &data, Some(meta)).expect("snapshot");
    drop(index);

    let catalog = Catalog::load_dir(&dir).expect("load snapshots");
    let server = Server::bind(catalog, "127.0.0.1:0", 2).expect("bind").with_snapshot_dir(&dir);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    let mut client = Client::connect(addr).expect("connect");
    println!("serving 'demo' ({} rows) on {addr}", data.len());

    // ---- Before calibration, a recall target is an error, not a guess.
    let q = data.get(0);
    match client.search("demo", q, &SearchRequest::top_k(10).target_recall(0.9)) {
        Err(ClientError::Server(msg)) => println!("\nuncalibrated target_recall → {msg}"),
        other => panic!("expected the typed uncalibrated error, got {other:?}"),
    }

    // ---- Calibrate: one wire call, table persisted into the snapshot.
    let (points, max_recall, sampled) = client.calibrate("demo", 64, 10).expect("calibrate");
    println!(
        "\ncalibrated: {points} grid points from {sampled} sampled queries, \
         max measured recall {max_recall:.3}"
    );

    // ---- The planner ladder: higher targets buy more budget/probes.
    println!("\n{:>7}  {:>7}  {:>7}  {:>10}  {:>8}", "target", "budget", "probes", "predicted", "scanned");
    for target in [0.5, 0.75, 0.9, 0.99] {
        let mut req = SearchRequest::top_k(10).target_recall(target);
        req.fields.stats = true;
        let (_, stats) = client.search("demo", q, &req).expect("planned search");
        let stats = stats.expect("stats requested");
        let plan = stats.plan.expect("plan reported");
        println!(
            "{target:>7.2}  {:>7}  {:>7}  {:>10.3}  {:>8}",
            plan.budget, plan.probes, plan.predicted_recall, stats.candidates_scanned
        );
    }

    // ---- Planned vs the saturated manual corner: same answers, less work.
    let mut planned = SearchRequest::top_k(10).target_recall(0.9);
    planned.fields.stats = true;
    let (p_hits, p_stats) = client.search("demo", q, &planned).expect("planned");
    let mut manual = SearchRequest::top_k(10).budget(data.len()).probes(16);
    manual.fields.stats = true;
    let (m_hits, m_stats) = client.search("demo", q, &manual).expect("manual");
    let shared = p_hits.iter().filter(|h| m_hits.iter().any(|m| m.id == h.id)).count();
    println!(
        "\ntarget 0.9 vs saturated manual: {shared}/{} neighbors shared, \
         {} vs {} candidates scanned",
        m_hits.len(),
        p_stats.unwrap().candidates_scanned,
        m_stats.unwrap().candidates_scanned
    );

    // ---- The overload dial, in process. `annd --recall-floor 0.7
    // --p99-bound-us 800` arms exactly this object at the server edge.
    let dial = plan::Degrader { floor: 0.7, p99_bound_micros: 800 };
    println!("\noverload degradation (floor 0.7, p99 bound 800µs):");
    for p99 in [400u64, 900, 2_000, 8_000] {
        println!("  p99 {p99:>5}µs: target 0.95 → effective {:.2}", dial.effective(0.95, p99));
    }

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();
}
