//! Filtered + range search through the unified `SearchRequest` /
//! `SearchResponse` API.
//!
//! Builds an exact index and an LCCS-LSH index over the same clustered
//! data, then asks three kinds of questions through one contract:
//!
//! 1. plain top-k (`SearchRequest::top_k(k).budget(λ)`),
//! 2. predicate-filtered top-k (an `IdFilter` allowlist — think ACLs or
//!    shard routing),
//! 3. range search (`max_dist` — "everything within distance d, nearest
//!    first, at most k").
//!
//! For the exact scheme every answer is checked against the brute-force
//! oracle (`ExactKnn::single_query_filtered`) bit for bit; for LCCS the
//! example shows the filter holding inside the candidate loop and the
//! `SearchStats` counters that make budget tuning observable.
//!
//! Run with: `cargo run --release --example filtered_search`

use ann::{IdFilter, IndexSpec, SearchRequest};
use dataset::{ExactKnn, Metric, SynthSpec};
use eval::registry::{self, BuildCtx};
use std::sync::Arc;

fn main() {
    let spec = SynthSpec::sift_like().with_n(20_000);
    let data = Arc::new(spec.generate(7));
    let queries = spec.generate_queries(8, 7);
    let ctx = BuildCtx { data: &data, metric: Metric::Euclidean };

    let exact = registry::build_index(&IndexSpec::linear(), &ctx).expect("linear");
    let lccs =
        registry::build_index(&IndexSpec::lccs(32).with_w(8.0).with_seed(7), &ctx).expect("lccs");

    // An "access control list": only every 5th row may be answered.
    let acl: Vec<u32> = (0..data.len() as u32).filter(|i| i % 5 == 0).collect();

    println!("== filtered + range search over {} rows ==", data.len());
    for (qi, q) in queries.iter().enumerate() {
        let top = SearchRequest::top_k(5).budget(512).with_stats();
        let filtered = top.clone().filter(IdFilter::allow(acl.clone()));
        let radius = ExactKnn::single_query(&data, q, 10, Metric::Euclidean)[9].dist;
        let ranged = top.clone().max_dist(radius);

        // Exact scheme: every flavor must equal the brute-force oracle.
        let plain = exact.search(q, &top);
        let oracle = ExactKnn::single_query(&data, q, 5, Metric::Euclidean);
        assert_eq!(plain.hits, oracle, "plain top-k == oracle");

        let f = exact.search(q, &filtered);
        let oracle =
            ExactKnn::single_query_filtered(&data, q, 5, Metric::Euclidean, |id| id % 5 == 0, None);
        assert_eq!(f.hits, oracle, "filtered top-k == filtered oracle");

        let r = exact.search(q, &ranged);
        let oracle = ExactKnn::single_query_filtered(
            &data,
            q,
            5,
            Metric::Euclidean,
            |_| true,
            Some(radius),
        );
        assert_eq!(r.hits, oracle, "range search == range oracle");
        assert!(r.hits.iter().all(|h| h.dist <= radius));

        // Approximate scheme: the predicate holds inside the candidate
        // loop, and the stats expose what the budget actually bought.
        let a = lccs.search(q, &filtered);
        assert!(a.hits.iter().all(|h| h.id % 5 == 0), "every LCCS hit passes the ACL");
        println!(
            "q{qi}: top1 id={id:<5} | filtered top1 id={fid:<5} | {nr} in radius {radius:>7.2} | \
             lccs scanned {scanned:>4} candidates, {pushes} heap pushes, {us} µs",
            id = plain.hits[0].id,
            fid = f.hits.first().map_or(0, |h| h.id),
            nr = r.hits.len(),
            scanned = a.stats.candidates_scanned,
            pushes = a.stats.heap_pushes,
            us = a.stats.wall_micros,
        );
    }
    println!("all filtered/range answers verified against the brute-force oracle");
}
