//! LSH-family independence: LCCS-LSH over **Hamming distance** with the
//! bit-sampling family (η(d) = O(1) per hash — the regime §5.2 highlights
//! for the α = 1/(1−ρ) configuration) and over **Jaccard distance** with
//! MinHash. The CSA layer is identical in all cases; only the family and
//! the verification metric change.
//!
//! ```sh
//! cargo run --release --example hamming_search
//! ```

use dataset::{Dataset, ExactKnn, Metric, SynthSpec};
use lccs_lsh::{LccsLsh, LccsParams};
use std::sync::Arc;

fn binary_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    // Threshold a clustered Gaussian mixture into {0,1}^d: preserves the
    // cluster structure in Hamming space.
    let base = SynthSpec::new("binary", n, d).with_clusters(24).generate(seed);
    let flat: Vec<f32> =
        base.as_flat().iter().map(|&x| if x > 0.0 { 1.0 } else { 0.0 }).collect();
    Dataset::from_flat("binary", d, flat)
}

fn run(metric: Metric, params: LccsParams, data: Arc<Dataset>, queries: &Dataset) {
    let k = 10;
    let gt = ExactKnn::compute(&data, queries, k, metric);
    let index = LccsLsh::build(data.clone(), metric, &params);
    let mut scratch = index.scratch();
    let mut hits = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        let out = index.query_with(q, k, 128, &mut scratch);
        let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
        hits += out.neighbors.iter().filter(|n| truth.contains(&n.id)).count();
    }
    println!(
        "{:<9} family={:?}: recall@{k} = {:.1}%",
        metric.name(),
        params.family,
        hits as f64 / (k * queries.len()) as f64 * 100.0
    );
}

fn main() {
    let n = 10_000;
    let d = 256;
    let data = Arc::new(binary_dataset(n, d, 5));
    let queries = binary_dataset(64, d, 5).truncated(40);

    run(Metric::Hamming, LccsParams::hamming().with_m(128), data.clone(), &queries);
    run(Metric::Jaccard, LccsParams::jaccard().with_m(128), data.clone(), &queries);
    // The same binary data under Euclidean for reference (Hamming = squared
    // Euclidean on {0,1}^d).
    run(Metric::Euclidean, LccsParams::euclidean(3.0).with_m(128), data, &queries);
}
