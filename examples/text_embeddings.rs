//! Text-embedding scenario: GloVe-like vectors under **Angular distance**
//! with the cross-polytope family — semantic search over word/tweet
//! embeddings, with the multi-probe scheme reducing the index footprint.
//!
//! ```sh
//! cargo run --release --example text_embeddings
//! ```

use dataset::{ExactKnn, Metric, SynthSpec};
use lccs_lsh::{LccsParams, MpLccsLsh, MpParams};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let spec = SynthSpec::glove_like().with_n(20_000);
    let data = Arc::new(spec.generate(11).normalized());
    let queries = spec.generate_queries(50, 11).normalized();
    let k = 10;
    let gt = ExactKnn::compute(&data, &queries, k, Metric::Angular);

    // A small m with aggressive probing: the multi-probe trade — less
    // memory, more probes per query (paper §6.4 / Figure 10).
    let m = 64;
    let index = MpLccsLsh::build(
        data.clone(),
        Metric::Angular,
        &LccsParams::angular().with_m(m),
        MpParams { probes: 2 * m + 1, max_alts: 8 },
    );
    println!(
        "MP-LCCS-LSH over {} normalized {}-d embeddings, m={m}, #probes={}",
        data.len(),
        data.dim(),
        2 * m + 1
    );
    println!("index: {:.1} MB", index.index_bytes() as f64 / 1e6);

    let mut scratch = index.scratch();
    for lambda in [16usize, 64, 256] {
        let t0 = Instant::now();
        let mut hits = 0usize;
        for (qi, q) in queries.iter().enumerate() {
            let out = index.query_with(q, k, lambda, &mut scratch);
            let truth: Vec<u32> = gt.neighbors(qi).iter().map(|n| n.id).collect();
            hits += out.neighbors.iter().filter(|n| truth.contains(&n.id)).count();
        }
        let ms = t0.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;
        println!(
            "λ={lambda:>4}: recall@{k} = {:>5.1}%  |  {:.3} ms/query",
            hits as f64 / (k * queries.len()) as f64 * 100.0,
            ms
        );
    }
}
