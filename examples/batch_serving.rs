//! Serving-style batch queries through the workspace-wide `AnnIndex`
//! trait: build three very different schemes, erase them behind
//! `Box<dyn AnnIndex>`, and answer the same query batch through the
//! parallel executor — one generic loop, no per-algorithm code.
//!
//! Run with: `cargo run --release --example batch_serving`

use baselines::{LinearScan, MultiProbeLsh, MultiProbeLshParams};
use dataset::{Metric, SynthSpec};
use lccs_lsh::{AnnIndex, BuildAnn, LccsLsh, LccsParams, SearchRequest};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let spec = SynthSpec::sift_like().with_n(20_000);
    let data = Arc::new(spec.generate(7));
    let queries = spec.generate_queries(256, 7);
    println!("dataset: n={} d={}, batch of {} queries", data.len(), data.dim(), queries.len());

    // Heterogeneous fleet, one interface.
    let indexes: Vec<Box<dyn AnnIndex>> = vec![
        Box::new(LccsLsh::build_index(
            data.clone(),
            Metric::Euclidean,
            &LccsParams::euclidean(8.0).with_m(64),
        )),
        Box::new(MultiProbeLsh::build_index(
            data.clone(),
            Metric::Euclidean,
            &MultiProbeLshParams {
                k_funcs: 4,
                l_tables: 4,
                probes: 16,
                max_alts: 4,
                family: lsh::FamilyKind::RandomProjection,
                family_params: lsh::FamilyParams { w: 8.0 },
                seed: 7,
            },
        )),
        Box::new(LinearScan::build_index(data.clone(), Metric::Euclidean, &())),
    ];

    let params = SearchRequest::top_k(10).budget(256).probes(16).params();
    for index in &indexes {
        let start = Instant::now();
        let results = index.query_batch(&queries, &params);
        let elapsed = start.elapsed();
        let mean_top_dist: f64 = results
            .iter()
            .filter_map(|r| r.first().map(|n| n.dist))
            .sum::<f64>()
            / results.len() as f64;
        println!(
            "{:>16}  {:>8.1} qps  {:>7.3} ms/query (wall)  index {:>6.1} MB  mean d1 {:.3}",
            index.name(),
            queries.len() as f64 / elapsed.as_secs_f64(),
            elapsed.as_secs_f64() * 1000.0 / queries.len() as f64,
            index.index_bytes() as f64 / 1e6,
            mean_top_dist,
        );
    }
}
