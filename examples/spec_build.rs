//! Spec-driven construction: one config string opens any scheme.
//!
//! PR 3 promoted `IndexSpec` into the `ann` API crate with a canonical
//! textual grammar (`scheme:key=value,...`), so a workload definition is
//! just a list of strings — no per-algorithm Rust, no recompiling to
//! switch schemes. This example parses a handful of specs (as a config
//! file or CLI flag would deliver them), builds each through the eval
//! registry, and races them on the same synthetic workload. It also
//! shows the JSON form and the error taxonomy a bad string produces.
//!
//! Run with: `cargo run --release --example spec_build`

use dataset::{ExactKnn, Metric, SynthSpec};
use eval::harness::{build_spec, run_point};
use std::sync::Arc;

fn main() {
    // The kind of list an operator would keep in a config file. `w` and
    // `seed` ride inside the spec, so each line fully determines a build.
    let config = [
        "lccs:m=32,w=8,seed=7",
        "mp-lccs:m=32,w=8,seed=7",
        "e2lsh:k=4,l=16,w=8,seed=7",
        "qalsh:m=32,l=8,w=8,seed=7",
        "kdtree",
        "linear",
    ];

    let synth = SynthSpec::sift_like().with_n(8_000);
    let data = Arc::new(synth.generate(7));
    let queries = synth.generate_queries(50, 7);
    let gt = ExactKnn::compute(&data, &queries, 10, Metric::Euclidean);

    println!("{:<28} {:>8} {:>9} {:>10}", "spec", "recall", "ms/query", "index");
    for text in config {
        let spec: ann::IndexSpec = text.parse().expect("valid spec");
        let built = build_spec(&spec, &data, Metric::Euclidean).expect("buildable");
        let pt = run_point(&built, "sift", &queries, &gt, 10, 256, 17);
        println!(
            "{text:<28} {:>7.1}% {:>9.3} {:>9.1}K",
            pt.recall * 100.0,
            pt.query_ms,
            pt.index_bytes as f64 / 1e3
        );
    }

    // Specs round-trip through JSON for HTTP-ish frontends...
    let spec: ann::IndexSpec = "mp-lccs:m=64,seed=42".parse().unwrap();
    println!("\njson form: {}", spec.to_json());
    assert_eq!(ann::IndexSpec::from_json(&spec.to_json()).unwrap(), spec);

    // ...and bad strings fail with typed, explainable errors.
    for bad in ["hnsw:m=16", "lccs:m=16,m=32", "lccs:m=0", "e2lsh:k=4"] {
        let err = bad.parse::<ann::IndexSpec>().unwrap_err();
        println!("rejected {bad:?}: {err}");
    }
    println!("\nfull grammar:\n{}", ann::spec::help());
}
